//! Drivers: wire a degree sequence onto a simulated NCC network, run a
//! distributed realization, and re-assemble + sanity-check the output.
//!
//! Degrees are assigned to nodes by knowledge-path position: `degrees[i]`
//! goes to the `i`-th node of `G_k`. (The algorithms themselves never use
//! path positions as input — assignment order is just bookkeeping.)
//!
//! Engine note: every realization has two drivers. The `*_batched`
//! functions run the [`RealizeDegrees`](crate::distributed::proto)
//! state machine on the **batched executor** — the production path,
//! practical at six-digit `n` (`tests/scale.rs`). The plain functions run
//! the direct-style closures on the threaded oracle (feature `threaded`,
//! on by default) and serve as the differential twins: both paths realize
//! the same overlay in the same number of rounds
//! (`crates/core/tests/batched_drivers.rs`).

use crate::distributed::proto::{Flavor, RealizeDegrees};
#[cfg(feature = "threaded")]
use crate::distributed::{approx, explicit, implicit};
use crate::verify::{self, Assembled};
use dgr_graph::Graph;
use dgr_ncc::{Config, EngineKind, EngineStats, Network, NodeId, RunMetrics, SimError, Sink};
use dgr_primitives::sort::SortBackend;
use std::collections::BTreeMap;

/// A realized overlay together with everything needed to verify it.
#[derive(Clone, Debug)]
pub struct RealizedOutput {
    /// The overlay as a simple graph.
    pub graph: Graph,
    /// Multiset degrees (duplicates counted; equals simple degrees on all
    /// exact runs).
    pub multi_degrees: BTreeMap<NodeId, usize>,
    /// Requested degree per node.
    pub requested: BTreeMap<NodeId, usize>,
    /// Node IDs in knowledge-path order (position `i` requested
    /// `degrees[i]`).
    pub path_order: Vec<NodeId>,
    /// Explicit-mode only: each node's full claimed neighbor list.
    pub explicit_neighbors: BTreeMap<NodeId, Vec<NodeId>>,
    /// Duplicate edge claims (multigraph bookkeeping; 0 in exact mode).
    pub duplicate_edges: usize,
    /// Algorithm 3 phase count (the Lemma 10 quantity).
    pub phases: u64,
    /// Simulator metrics (rounds, messages, capacity compliance).
    pub metrics: RunMetrics,
}

/// Outcome of a driver run: realized, or correctly refused.
#[derive(Clone, Debug)]
pub enum DriverOutput {
    /// The sequence was realized.
    Realized(Box<RealizedOutput>),
    /// Every node reported `UNREALIZABLE`.
    Unrealizable {
        /// Metrics of the refusing run.
        metrics: RunMetrics,
    },
}

impl DriverOutput {
    /// Unwraps the realized output, panicking (with context) otherwise.
    pub fn expect_realized(&self) -> &RealizedOutput {
        match self {
            DriverOutput::Realized(r) => r,
            DriverOutput::Unrealizable { .. } => {
                panic!("expected a realization, got UNREALIZABLE")
            }
        }
    }

    /// Did the run (correctly) refuse the sequence?
    pub fn is_unrealizable(&self) -> bool {
        matches!(self, DriverOutput::Unrealizable { .. })
    }

    /// The run metrics, whichever way it ended.
    pub fn metrics(&self) -> &RunMetrics {
        match self {
            DriverOutput::Realized(r) => &r.metrics,
            DriverOutput::Unrealizable { metrics } => metrics,
        }
    }
}

fn degree_assignment(net: &Network, degrees: &[usize]) -> BTreeMap<NodeId, usize> {
    net.assign_in_path_order(degrees)
}

fn finish(
    net: &Network,
    degrees: &[usize],
    assembled: Assembled,
    explicit_neighbors: BTreeMap<NodeId, Vec<NodeId>>,
    phases: u64,
    metrics: RunMetrics,
) -> DriverOutput {
    let path_order = net.ids_in_path_order().to_vec();
    let requested = degree_assignment(net, degrees);
    DriverOutput::Realized(Box::new(RealizedOutput {
        graph: assembled.graph,
        multi_degrees: assembled.multi_degrees,
        requested,
        path_order,
        explicit_neighbors,
        duplicate_edges: assembled.duplicate_edges,
        phases,
        metrics,
    }))
}

/// Checks that either every node realized or every node refused; returns
/// the per-node successes or `None` for a (consistent) refusal.
fn split_consistent<T>(
    outputs: Vec<(NodeId, Result<T, crate::distributed::Unrealizable>)>,
) -> Option<Vec<(NodeId, T)>> {
    let failures = outputs.iter().filter(|(_, r)| r.is_err()).count();
    if failures == 0 {
        Some(
            outputs
                .into_iter()
                .map(|(id, r)| (id, r.ok().unwrap()))
                .collect(),
        )
    } else {
        assert_eq!(
            failures,
            outputs.len(),
            "nodes disagree about realizability"
        );
        None
    }
}

/// A completed degree-realization run: the driver output plus the
/// executor's internal statistics (all-zero on the threaded oracle).
#[derive(Clone, Debug)]
pub struct DegreesRun {
    /// Realized overlay or consistent refusal.
    pub output: DriverOutput,
    /// Executor-internal statistics (compactions, routing paths).
    pub engine: EngineStats,
}

/// The **engine room** of every degree-sequence realization — one typed
/// entry point over workload flavor × engine × mask × sorting backend.
/// This is what the `dgr::Realization` facade builder drives; the legacy
/// `realize_*` free functions are deprecated delegating shims around it.
///
/// * `participants: None` realizes over the whole network; `Some(mask)`
///   runs the masked sub-network capability (the knowledge path links
///   across masked-out positions, which produce no output) — the
///   engine-level form of Algorithm 6's paper-exact prefix recursion.
/// * [`EngineKind::Threaded`] runs the direct-style oracle twins where
///   they exist (unmasked, bitonic), and the same state machines as the
///   batched executor otherwise — transcripts are identical either way
///   (`crates/core/tests/batched_drivers.rs`).
/// * [`SortBackend::RandomizedLogN`] requires a queueing (or recording)
///   capacity policy; see
///   [`rand_sort`](dgr_primitives::proto::rand_sort).
///
/// # Errors
///
/// Propagates simulator errors (model violations, round-limit), and
/// [`SimError::EngineUnavailable`] when the threaded oracle is requested
/// without the `threaded` feature.
///
/// `sink` receives the run's typed [`RunEvent`](dgr_ncc::RunEvent)
/// stream (`None` runs unobserved); both engines emit semantically
/// identical streams.
///
/// # Panics
///
/// Panics if a mask's length differs from `degrees.len()`.
pub fn realize_degrees(
    degrees: &[usize],
    participants: Option<&[bool]>,
    config: Config,
    flavor: Flavor,
    engine: EngineKind,
    sort: SortBackend,
    sink: Option<&mut dyn Sink>,
) -> Result<DegreesRun, SimError> {
    let net = Network::new(degrees.len(), config);
    let by_id = degree_assignment(&net, degrees);
    // The direct-style oracle twins cover the unmasked bitonic plane;
    // everything else runs the state machines on the requested engine.
    #[cfg(feature = "threaded")]
    if engine == EngineKind::Threaded && participants.is_none() && sort == SortBackend::Bitonic {
        return realize_direct_threaded(&net, degrees, &by_id, flavor, sink);
    }
    if let Some(mask) = participants {
        assert_eq!(
            degrees.len(),
            mask.len(),
            "one degree per path position is required"
        );
        let result = net.run_protocol_on(engine, Some(mask), sink, |s| {
            RealizeDegrees::with_sort(by_id[&s.id], flavor, sort)
        })?;
        let engine_stats = result.engine.clone();
        return Ok(DegreesRun {
            output: finish_masked(&net, degrees, mask, result),
            engine: engine_stats,
        });
    }
    let result = net.run_protocol_on(engine, None, sink, |s| {
        RealizeDegrees::with_sort(by_id[&s.id], flavor, sort)
    })?;
    let engine_stats = result.engine.clone();
    Ok(DegreesRun {
        output: finish_batched(&net, degrees, result, flavor == Flavor::Explicit),
        engine: engine_stats,
    })
}

/// The direct-style (blocking closure) drivers on the threaded oracle —
/// the obviously-correct twins the differential suites compare against.
#[cfg(feature = "threaded")]
fn realize_direct_threaded(
    net: &Network,
    degrees: &[usize],
    by_id: &BTreeMap<NodeId, usize>,
    flavor: Flavor,
    sink: Option<&mut dyn Sink>,
) -> Result<DegreesRun, SimError> {
    type DirectOut = Result<(u64, Vec<NodeId>), crate::distributed::Unrealizable>;
    let result: dgr_ncc::RunResult<DirectOut> = match flavor {
        Flavor::Implicit => net.run_observed(sink, |h| {
            implicit::realize(h, by_id[&h.id()]).map(|o| (o.phases, o.neighbors))
        })?,
        Flavor::Envelope => net.run_observed(sink, |h| {
            approx::realize(h, by_id[&h.id()]).map(|o| (o.phases, o.neighbors))
        })?,
        Flavor::Explicit => net.run_observed(sink, |h| {
            explicit::realize(h, by_id[&h.id()]).map(|o| (o.phases, o.neighbors))
        })?,
    };
    let metrics = result.metrics.clone();
    let engine_stats = result.engine.clone();
    let output = match split_consistent(result.outputs) {
        None => DriverOutput::Unrealizable { metrics },
        Some(outs) => {
            let phases = outs.first().map(|(_, (p, _))| *p).unwrap_or(0);
            if flavor == Flavor::Explicit {
                let lists: BTreeMap<NodeId, Vec<NodeId>> = outs
                    .into_iter()
                    .map(|(id, (_, neighbors))| (id, neighbors))
                    .collect();
                let assembled = verify::assemble_explicit(net.ids_in_path_order(), &lists)
                    .expect("explicit realization lost symmetry");
                finish(net, degrees, assembled, lists, phases, metrics)
            } else {
                let assembled = verify::assemble_implicit(
                    net.ids_in_path_order(),
                    outs.into_iter().map(|(id, (_, neighbors))| (id, neighbors)),
                );
                finish(net, degrees, assembled, BTreeMap::new(), phases, metrics)
            }
        }
    };
    Ok(DegreesRun {
        output,
        engine: engine_stats,
    })
}

/// Runs Algorithm 3 (implicit, exact) on a fresh network.
///
/// # Errors
///
/// Propagates simulator errors (model violations, round-limit).
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_implicit(degrees: &[usize], config: Config) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Implicit,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Theorem 13 upper-envelope realization (implicit, multigraph
/// semantics) on a fresh network.
///
/// # Errors
///
/// Propagates simulator errors.
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_approx(degrees: &[usize], config: Config) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Envelope,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Theorem 12 explicit realization on a fresh network. Use a
/// [`Config::with_queueing`] configuration — the staggered hand-off relies
/// on receive-side queueing.
///
/// # Errors
///
/// Propagates simulator errors, and reports asymmetric explicit claims as
/// a node panic (they indicate a protocol bug).
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_explicit(degrees: &[usize], config: Config) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Explicit,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Shared assembly of a batched [`RealizeDegrees`] run.
fn finish_batched(
    net: &Network,
    degrees: &[usize],
    result: dgr_ncc::RunResult<Result<crate::distributed::ImplicitOutcome, crate::Unrealizable>>,
    explicit: bool,
) -> DriverOutput {
    let metrics = result.metrics;
    match split_consistent(result.outputs) {
        None => DriverOutput::Unrealizable { metrics },
        Some(outs) => {
            let phases = outs.first().map(|(_, o)| o.phases).unwrap_or(0);
            if explicit {
                let lists: BTreeMap<NodeId, Vec<NodeId>> =
                    outs.into_iter().map(|(id, o)| (id, o.neighbors)).collect();
                let assembled = verify::assemble_explicit(net.ids_in_path_order(), &lists)
                    .expect("explicit realization lost symmetry");
                finish(net, degrees, assembled, lists, phases, metrics)
            } else {
                let assembled = verify::assemble_implicit(
                    net.ids_in_path_order(),
                    outs.into_iter().map(|(id, o)| (id, o.neighbors)),
                );
                finish(net, degrees, assembled, BTreeMap::new(), phases, metrics)
            }
        }
    }
}

/// Runs Algorithm 3 (implicit, exact) on the batched executor.
///
/// # Errors
///
/// Propagates simulator errors (model violations, round-limit).
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_implicit_batched(
    degrees: &[usize],
    config: Config,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Implicit,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Theorem 13 upper-envelope realization on the batched executor.
///
/// # Errors
///
/// Propagates simulator errors.
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_approx_batched(degrees: &[usize], config: Config) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Envelope,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Theorem 12 explicit realization on the batched executor. Use a
/// [`Config::with_queueing`] configuration — the staggered hand-off relies
/// on receive-side queueing.
///
/// # Errors
///
/// Propagates simulator errors, and reports asymmetric explicit claims as
/// a panic (they indicate a protocol bug).
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_explicit_batched(
    degrees: &[usize],
    config: Config,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        Flavor::Explicit,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Assembles a masked run's outputs against the *participating* nodes
/// only (masked-out positions have no outputs and request nothing).
fn finish_masked(
    net: &Network,
    degrees: &[usize],
    participants: &[bool],
    result: dgr_ncc::RunResult<Result<crate::distributed::ImplicitOutcome, crate::Unrealizable>>,
) -> DriverOutput {
    let metrics = result.metrics;
    match split_consistent(result.outputs) {
        None => DriverOutput::Unrealizable { metrics },
        Some(outs) => {
            let phases = outs.first().map(|(_, o)| o.phases).unwrap_or(0);
            let members: Vec<NodeId> = net
                .ids_in_path_order()
                .iter()
                .zip(participants.iter())
                .filter(|&(_, &p)| p)
                .map(|(&id, _)| id)
                .collect();
            let requested: BTreeMap<NodeId, usize> = net
                .ids_in_path_order()
                .iter()
                .zip(degrees.iter())
                .zip(participants.iter())
                .filter(|&(_, &p)| p)
                .map(|((&id, &d), _)| (id, d))
                .collect();
            let assembled = verify::assemble_implicit(
                &members,
                outs.into_iter().map(|(id, o)| (id, o.neighbors)),
            );
            DriverOutput::Realized(Box::new(RealizedOutput {
                graph: assembled.graph,
                multi_degrees: assembled.multi_degrees,
                requested,
                path_order: members,
                explicit_neighbors: BTreeMap::new(),
                duplicate_edges: assembled.duplicate_edges,
                phases,
                metrics,
            }))
        }
    }
}

/// `realize_on`-over-a-sub-network on the **batched executor**: only the
/// masked-in path positions participate (the knowledge path `G_k` links
/// across the rest — [`Network::run_protocol_masked`]), and the node at
/// participating position `i` requests `degrees[i]`. This is the
/// engine-level capability behind Algorithm 6's paper-exact prefix
/// recursion: realizing the prefix degrees by a sub-network Algorithm 3 /
/// Theorem 13 run instead of the cyclic-pipeline substitute — at scales
/// the threaded `realize_on` cannot touch.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `degrees.len() != participants.len()`.
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_masked_batched(
    degrees: &[usize],
    participants: &[bool],
    config: Config,
    flavor: Flavor,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        Some(participants),
        config,
        flavor,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// The threaded differential twin of [`realize_masked_batched`]: the same
/// state machines on the thread-per-node oracle over the same mask, for
/// transcript-identical comparison.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `degrees.len() != participants.len()`.
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_masked_threaded(
    degrees: &[usize],
    participants: &[bool],
    config: Config,
    flavor: Flavor,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        Some(participants),
        config,
        flavor,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// [`realize_masked_batched`] over the first `prefix` path positions —
/// the exact sub-network shape of the paper's Algorithm 6 phase 1
/// (`degrees[i]` for `i < prefix` is realized; later entries idle out).
///
/// # Errors
///
/// Propagates simulator errors.
#[deprecated(note = "use `dgr::Realization` (or the `realize_degrees` engine room)")]
pub fn realize_prefix_batched(
    degrees: &[usize],
    prefix: usize,
    config: Config,
    flavor: Flavor,
) -> Result<DriverOutput, SimError> {
    let mask: Vec<bool> = (0..degrees.len()).map(|i| i < prefix).collect();
    realize_degrees(
        degrees,
        Some(&mask),
        config,
        flavor,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn implicit_driver_end_to_end() {
        let degrees = vec![2, 2, 1, 1];
        let out = realize_implicit(&degrees, Config::ncc0(41)).unwrap();
        let g = out.expect_realized();
        assert_eq!(g.graph.edge_count(), 3);
        verify::degrees_match(&g.graph, &g.requested).unwrap();
        assert!(g.metrics.is_clean());
        assert!(g.phases >= 1);
    }

    #[test]
    fn metrics_accessible_on_refusal() {
        let out = realize_implicit(&[1, 1, 1], Config::ncc0(42)).unwrap();
        assert!(out.is_unrealizable());
        assert!(out.metrics().rounds > 0);
    }
}
