//! The Erdős–Gallai characterization of graphic sequences (1960):
//! a non-increasing sequence `D` with even sum is graphic iff for every
//! `k ∈ [1, n]`:
//!
//! ```text
//! Σ_{i=1..k} d_i  ≤  k(k-1) + Σ_{i=k+1..n} min(d_i, k)
//! ```
//!
//! Implemented in `O(n log n)` (sort + prefix sums + a binary search per
//! `k`, and it is enough to test `k` up to the Durfee number).

/// Is the sequence graphic? Order does not matter; the empty sequence is
/// graphic (the empty graph).
pub fn is_graphic(degrees: &[usize]) -> bool {
    let n = degrees.len();
    if n == 0 {
        return true;
    }
    let mut d = degrees.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d[0] >= n {
        return false;
    }
    if d.iter().sum::<usize>() % 2 != 0 {
        return false;
    }
    // prefix[i] = d_0 + … + d_{i-1}.
    let mut prefix = vec![0u64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + d[i] as u64;
    }
    // It suffices to check k up to the Durfee number (largest k with
    // d_k ≥ k-1, 1-based) — beyond it the inequality is implied.
    for k in 1..=n {
        if d[k - 1] < k - 1 {
            break;
        }
        let lhs = prefix[k];
        // Σ_{i>k} min(d_i, k): entries after position k with d_i ≥ k
        // contribute k; the rest contribute d_i. `d` is non-increasing, so
        // binary-search the first index (≥ k) with d_i < k.
        let split = d.partition_point(|&x| x >= k).max(k);
        let big = (split - k) as u64 * k as u64;
        let small = prefix[n] - prefix[split];
        let rhs = (k as u64) * (k as u64 - 1) + big + small;
        if lhs > rhs {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check of the inequalities for cross-validation.
    fn is_graphic_naive(degrees: &[usize]) -> bool {
        let n = degrees.len();
        if n == 0 {
            return true;
        }
        let mut d = degrees.to_vec();
        d.sort_unstable_by(|a, b| b.cmp(a));
        if d[0] >= n || d.iter().sum::<usize>() % 2 != 0 {
            return false;
        }
        for k in 1..=n {
            let lhs: usize = d[..k].iter().sum();
            let rhs: usize = k * (k - 1) + d[k..].iter().map(|&x| x.min(k)).sum::<usize>();
            if lhs > rhs {
                return false;
            }
        }
        true
    }

    #[test]
    fn known_graphic_sequences() {
        assert!(is_graphic(&[]));
        assert!(is_graphic(&[0]));
        assert!(is_graphic(&[1, 1]));
        assert!(is_graphic(&[2, 2, 2])); // triangle
        assert!(is_graphic(&[3, 3, 3, 3])); // K4
        assert!(is_graphic(&[3, 2, 2, 2, 1])); // house graph
        assert!(is_graphic(&[5, 5, 5, 5, 5, 5])); // K6
        assert!(is_graphic(&[2, 1, 1, 0])); // path + isolated
        assert!(is_graphic(&[3, 1, 1, 1, 1, 1])); // star plus an extra edge
    }

    #[test]
    fn known_non_graphic_sequences() {
        assert!(!is_graphic(&[1])); // odd sum
        assert!(!is_graphic(&[4, 4, 4, 1, 1])); // fails EG at k=3
        assert!(!is_graphic(&[3, 3, 1, 1])); // fails EG at k=2
        assert!(!is_graphic(&[2, 2])); // degree ≥ n
        assert!(!is_graphic(&[5, 5, 4, 3, 2, 1])); // classic non-graphic
    }

    #[test]
    fn matches_naive_exhaustively_small() {
        // All sequences over {0..4}^5.
        fn rec(buf: &mut Vec<usize>, len: usize) {
            if buf.len() == len {
                assert_eq!(
                    is_graphic(buf),
                    is_graphic_naive(buf),
                    "mismatch on {buf:?}"
                );
                return;
            }
            for d in 0..5 {
                buf.push(d);
                rec(buf, len);
                buf.pop();
            }
        }
        rec(&mut Vec::new(), 5);
    }

    #[test]
    fn order_does_not_matter() {
        assert_eq!(is_graphic(&[1, 3, 2, 2]), is_graphic(&[3, 2, 2, 1]));
        assert_eq!(is_graphic(&[1, 4, 1, 4, 4]), is_graphic(&[4, 4, 4, 1, 1]));
    }
}
