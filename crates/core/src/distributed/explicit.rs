//! Theorem 12: explicit degree realization in
//! `O(m/n + Δ/log n + log n)` rounds.
//!
//! After Algorithm 3, every edge `(u, v)` is stored at exactly one endpoint
//! (the group member `u`); `u` must announce its ID to `v` to make the
//! realization explicit. A node may be the target of up to `Δ`
//! announcements, far beyond its per-round receive capacity, so the
//! hand-off uses the staggered-delivery primitive (`DESIGN.md` §4's
//! substitute for the Theorem 8 butterfly collection): every announcement
//! is delayed uniformly in `[0, Θ(Δ/cap))` rounds and receive-side queueing
//! absorbs the w.h.p. `O(log n)` per-round overflow.
//!
//! Run this under [`CapacityPolicy::Queue`](dgr_ncc::CapacityPolicy::Queue);
//! the epoch length covers the worst-case queue drain unconditionally, so
//! delivery is guaranteed, not just w.h.p.

#[cfg(feature = "threaded")]
use {
    super::{ExplicitOutcome, ImplicitOutcome, Unrealizable},
    dgr_ncc::{tags, Msg, NodeHandle},
    dgr_primitives::{ops, stagger, PathCtx},
};

/// Full explicit realization: Algorithm 3, then the staggered hand-off.
///
/// # Errors
///
/// [`Unrealizable`] when the sequence is not graphic.
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, degree: usize) -> Result<ExplicitOutcome, Unrealizable> {
    let ctx = PathCtx::establish(h);
    let implicit =
        super::implicit::realize_on(h, &ctx, &ctx, degree, super::implicit::Mode::Exact)?;
    // Everyone learns Δ = max requested degree: the bound on any node's
    // incoming announcements, from which the epoch length is derived.
    let delta = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, degree as u64, u64::max) as usize;
    Ok(make_explicit(h, implicit, delta))
}

/// The hand-off alone: turns an implicit outcome into an explicit one.
/// `delta` must be a *commonly known* bound on any node's incoming
/// announcements (typically the broadcast maximum degree) — it determines
/// the epoch length, so every node of the network must pass the same
/// value, including nodes that did not participate in the realization.
#[cfg(feature = "threaded")]
pub fn make_explicit(
    h: &mut NodeHandle,
    implicit: ImplicitOutcome,
    delta: usize,
) -> ExplicitOutcome {
    let (spread, drain) = stagger::plan(delta, h.capacity());

    let sends = implicit
        .neighbors
        .iter()
        .map(|&nb| (nb, Msg::signal(tags::EDGE)))
        .collect();
    let received = stagger::staggered_send(h, sends, spread, drain);

    let mut neighbors = implicit.neighbors;
    neighbors.extend(
        received
            .iter()
            .filter(|e| e.msg.tag == tags::EDGE)
            .map(|e| e.src),
    );
    ExplicitOutcome {
        requested: implicit.requested,
        neighbors,
        phases: implicit.phases,
    }
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver;
    use dgr_ncc::Config;

    #[test]
    fn both_endpoints_know_every_edge() {
        let degrees = vec![4, 3, 3, 2, 2, 2, 1, 1];
        let out = driver::realize_explicit(&degrees, Config::ncc0(31).with_queueing()).unwrap();
        let g = out.expect_realized();
        // Explicit: every node's neighbor list is exactly its graph
        // adjacency — symmetric by construction of the check in the driver.
        for &id in &g.path_order {
            let mut listed = g.explicit_neighbors[&id].clone();
            listed.sort_unstable();
            listed.dedup();
            let mut actual = g.graph.neighbors_of(id);
            actual.sort_unstable();
            assert_eq!(listed, actual, "node {id}");
        }
        let mut want = degrees.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(g.graph.degree_sequence(), want);
        assert_eq!(g.metrics.undelivered, 0);
    }

    #[test]
    fn explicit_rejects_non_graphic() {
        let out =
            driver::realize_explicit(&[3, 3, 1, 1], Config::ncc0(33).with_queueing()).unwrap();
        assert!(out.is_unrealizable());
    }

    #[test]
    fn star_fan_in_is_paced() {
        // A star forces Δ = n-1 announcements at the hub; receive capacity
        // must never be exceeded at delivery time.
        let n = 48;
        let mut degrees = vec![1usize; n];
        degrees[0] = n - 1;
        let out = driver::realize_explicit(&degrees, Config::ncc0(35).with_queueing()).unwrap();
        let g = out.expect_realized();
        assert!(g.metrics.max_received_per_round <= g.metrics.capacity);
        assert_eq!(g.graph.degree_sequence()[0], n - 1);
    }
}
