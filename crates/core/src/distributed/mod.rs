//! Distributed degree realization in the NCC model (Section 4 of the
//! paper): the implicit Algorithm 3, its explicit extension, and the
//! upper-envelope variant for non-graphic sequences.

pub mod approx;
pub mod explicit;
pub mod implicit;
pub mod proto;

use dgr_ncc::NodeId;

/// Returned (consistently by *every* node) when the degree sequence is not
/// realizable — the distributed analogue of a node broadcasting
/// `UNREALIZABLE` in Algorithm 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unrealizable;

impl std::fmt::Display for Unrealizable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degree sequence is unrealizable")
    }
}

impl std::error::Error for Unrealizable {}

/// One node's result of an implicit realization: the edges *this node*
/// stores. In an implicit overlay each edge is known to at least one
/// endpoint; here the storing endpoint is always the group member, the
/// group leader being the one satisfied without learning its neighbors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImplicitOutcome {
    /// The degree this node asked for.
    pub requested: usize,
    /// IDs of neighbors whose edge is stored at this node.
    pub neighbors: Vec<NodeId>,
    /// Number of while-loop phases the algorithm ran (identical at every
    /// node; the Lemma 10 quantity).
    pub phases: u64,
}

/// One node's result of an explicit realization: the complete neighbor
/// list (both endpoints of every edge know it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplicitOutcome {
    /// The degree this node asked for.
    pub requested: usize,
    /// All neighbors of this node in the realized overlay.
    pub neighbors: Vec<NodeId>,
    /// Phases of the underlying implicit realization.
    pub phases: u64,
}

/// Umbrella re-export target: the per-node outcome types of the
/// distributed realizations.
pub type DistributedRealization = ImplicitOutcome;
