//! Algorithm 3 (and its explicit and upper-envelope extensions) as a
//! [`NodeProtocol`] for the batched executor.
//!
//! The direct-style implementations in the sibling modules compose
//! primitives by calling blocking functions in sequence; this port
//! composes the same primitives as [`Step`] sub-protocols chained through
//! one state machine, transitioning stages *within* a round exactly where
//! the direct style crosses a function boundary. The result is
//! round-for-round and message-for-message identical to the threaded
//! drivers — `crates/core/tests/batched_drivers.rs` holds the two engines
//! to the same realized overlay and round counts — while scaling to
//! hundreds of thousands of nodes (`tests/scale.rs`).
//!
//! The data-dependent while-loop of Algorithm 3 stays in lockstep for the
//! same reason as in direct style: its control values (δ, N, the error
//! flag) are globally aggregated, so every node transitions identically.
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol
//! [`Step`]: dgr_primitives::proto::Step

use super::implicit::Mode;
use super::{ImplicitOutcome, Unrealizable};
use dgr_ncc::{tags, NodeId, NodeProtocol, RoundCtx, Status, WireMsg};
use dgr_primitives::contacts::ContactTable;
use dgr_primitives::imcast::{CoverSide, Payload};
use dgr_primitives::proto::contacts::ContactsStep;
use dgr_primitives::proto::imcast::ImcastStep;
use dgr_primitives::proto::ops::AggBcastStep;
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::stagger::StaggerStep;
use dgr_primitives::proto::step::{AggOp, Poll, Step};
use dgr_primitives::proto::EstablishCtx;
use dgr_primitives::sort::{Order, SortedPath};
use dgr_primitives::{stagger, PathCtx};
use std::sync::Arc;

/// Which driver behavior the protocol reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Algorithm 3, implicit realization (Theorem 11).
    Implicit,
    /// Theorem 13 upper envelope (implicit, multigraph semantics).
    Envelope,
    /// Theorem 12 explicit realization (Algorithm 3 + staggered hand-off;
    /// requires a queueing capacity policy).
    Explicit,
}

impl Flavor {
    fn mode(self) -> Mode {
        match self {
            Flavor::Envelope => Mode::Envelope,
            _ => Mode::Exact,
        }
    }
}

enum Stage {
    Establish(EstablishCtx),
    Sort(SortStep),
    SortedContacts(ContactsStep),
    Delta(AggBcastStep),
    NMax(AggBcastStep),
    Mcast(ImcastStep),
    ErrFlag(AggBcastStep),
    DeltaBound(AggBcastStep),
    Handoff(StaggerStep),
}

/// The degree-realization state machine at one node. `degree` is this
/// node's requested degree; every node runs the same protocol.
pub struct RealizeDegrees {
    degree: usize,
    flavor: Flavor,
    stage: Stage,
    ctx: Option<PathCtx>,
    need: u64,
    outcome: ImplicitOutcome,
    sp: Option<SortedPath>,
    sct: Option<Arc<ContactTable>>,
    delta: usize,
    is_leader: bool,
}

impl RealizeDegrees {
    /// Builds the protocol for one node.
    pub fn new(degree: usize, flavor: Flavor) -> Self {
        RealizeDegrees {
            degree,
            flavor,
            stage: Stage::Establish(EstablishCtx::new()),
            ctx: None,
            need: degree as u64,
            outcome: ImplicitOutcome {
                requested: degree,
                neighbors: Vec::new(),
                phases: 0,
            },
            sp: None,
            sct: None,
            delta: 0,
            is_leader: false,
        }
    }

    fn ctx(&self) -> &PathCtx {
        self.ctx.as_ref().expect("stage before establish completed")
    }

    /// Opens a new Algorithm 3 phase: re-sort by remaining degree.
    fn begin_phase(&mut self, my_id: NodeId) {
        self.outcome.phases += 1;
        let ctx = self.ctx();
        self.stage = Stage::Sort(SortStep::new(
            ctx.vp,
            ctx.contacts.clone(),
            ctx.position,
            self.need,
            Order::Descending,
            my_id,
        ));
    }

    /// An aggregate + broadcast over the fixed global tree.
    fn agg(&self, value: u64, op: AggOp) -> AggBcastStep {
        let ctx = self.ctx();
        AggBcastStep::new(ctx.vp, ctx.tree.clone(), value, op)
    }

    /// Closes the run: implicit flavors finish, the explicit flavor first
    /// broadcasts Δ and staggers the edge announcements.
    fn finish(&mut self) -> Option<Status<Result<ImplicitOutcome, Unrealizable>>> {
        if self.flavor == Flavor::Explicit {
            self.stage = Stage::DeltaBound(self.agg(self.degree as u64, AggOp::Max));
            None
        } else {
            Some(Status::Done(Ok(std::mem::take(&mut self.outcome))))
        }
    }
}

impl NodeProtocol for RealizeDegrees {
    type Output = Result<ImplicitOutcome, Unrealizable>;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> Status<Self::Output> {
        loop {
            match &mut self.stage {
                Stage::Establish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(ctx) => {
                        self.ctx = Some(ctx);
                        self.begin_phase(rctx.id());
                    }
                },
                Stage::Sort(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sp) => {
                        self.stage = Stage::SortedContacts(ContactsStep::new(sp.vp));
                        self.sp = Some(sp);
                    }
                },
                Stage::SortedContacts(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(table) => {
                        self.sct = Some(table);
                        self.stage = Stage::Delta(self.agg(self.need, AggOp::Max));
                    }
                },
                Stage::Delta(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(delta) => {
                        if delta == 0 {
                            if let Some(done) = self.finish() {
                                return done;
                            }
                            continue;
                        }
                        if delta as usize >= self.ctx().vp.len {
                            // Some node wants more neighbors than exist.
                            return Status::Done(Err(Unrealizable));
                        }
                        self.delta = delta as usize;
                        let mine = u64::from(self.ctx().vp.member && self.need == delta);
                        self.stage = Stage::NMax(self.agg(mine, AggOp::Sum));
                    }
                },
                Stage::NMax(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(n_max) => {
                        let delta = self.delta;
                        let q = (n_max as usize / (delta + 1)).max(1);
                        let group_span = q * (delta + 1);
                        debug_assert!(group_span <= self.ctx().vp.len, "groups exceed the path");
                        let sp = self.sp.as_ref().expect("phase without a sorted path");
                        let rank = sp.rank;
                        self.is_leader = self.ctx().vp.member
                            && rank < group_span
                            && rank.is_multiple_of(delta + 1);
                        let task = self.is_leader.then(|| {
                            (
                                CoverSide::After,
                                delta,
                                Payload {
                                    addr: rctx.id(),
                                    word: 0,
                                },
                            )
                        });
                        self.stage = Stage::Mcast(ImcastStep::new(
                            sp.vp,
                            self.sct.clone().expect("phase without sorted contacts"),
                            task,
                        ));
                    }
                },
                Stage::Mcast(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(got) => {
                        let mut went_negative = false;
                        if self.is_leader {
                            debug_assert_eq!(
                                self.need, self.delta as u64,
                                "leader without max degree"
                            );
                            self.need = 0;
                        } else if let Some(p) = got {
                            if self.need == 0 {
                                match self.flavor.mode() {
                                    Mode::Exact => went_negative = true,
                                    Mode::Envelope => self.outcome.neighbors.push(p.addr),
                                }
                            } else {
                                self.outcome.neighbors.push(p.addr);
                                self.need -= 1;
                            }
                        }
                        self.stage = Stage::ErrFlag(self.agg(u64::from(went_negative), AggOp::Or));
                    }
                },
                Stage::ErrFlag(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(err) => {
                        if err != 0 {
                            return Status::Done(Err(Unrealizable));
                        }
                        self.begin_phase(rctx.id());
                    }
                },
                Stage::DeltaBound(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(delta) => {
                        let (spread, drain) = stagger::plan(delta as usize, rctx.capacity());
                        let sends = self
                            .outcome
                            .neighbors
                            .iter()
                            .map(|&nb| (nb, WireMsg::signal(tags::EDGE)))
                            .collect();
                        self.stage = Stage::Handoff(StaggerStep::new(sends, spread, drain));
                    }
                },
                Stage::Handoff(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(received) => {
                        self.outcome.neighbors.extend(
                            received
                                .iter()
                                .filter(|(_, msg)| msg.tag == tags::EDGE)
                                .map(|(src, _)| *src),
                        );
                        return Status::Done(Ok(std::mem::take(&mut self.outcome)));
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};
    use std::collections::HashMap;

    fn run_batched(
        degrees: &[usize],
        config: Config,
        flavor: Flavor,
    ) -> dgr_ncc::RunResult<Result<ImplicitOutcome, Unrealizable>> {
        let net = Network::new(degrees.len(), config);
        let by_id: HashMap<NodeId, usize> = net
            .ids_in_path_order()
            .iter()
            .copied()
            .zip(degrees.iter().copied())
            .collect();
        net.run_protocol(|s| RealizeDegrees::new(by_id[&s.id], flavor))
            .unwrap()
    }

    #[test]
    fn realizes_a_triangle_batched() {
        let result = run_batched(&[2, 2, 2], Config::ncc0(1), Flavor::Implicit);
        assert!(result.metrics.is_clean());
        let edges: usize = result
            .outputs
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().neighbors.len())
            .sum();
        assert_eq!(edges, 3);
    }

    #[test]
    fn rejects_non_graphic_batched() {
        let result = run_batched(&[3, 3, 1, 1], Config::ncc0(3), Flavor::Implicit);
        assert!(result.outputs.iter().all(|(_, r)| r.is_err()));
    }

    #[test]
    fn envelope_accepts_odd_sums_batched() {
        let result = run_batched(&[3, 3, 1, 0], Config::ncc0(5), Flavor::Envelope);
        assert!(result.outputs.iter().all(|(_, r)| r.is_ok()));
    }
}
