//! Algorithm 3 (and its explicit and upper-envelope extensions) as a
//! [`NodeProtocol`] for the batched executor.
//!
//! The direct-style implementations in the sibling modules compose
//! primitives by calling blocking functions in sequence; this port
//! composes the same primitives as [`Step`] sub-protocols chained through
//! one state machine, transitioning stages *within* a round exactly where
//! the direct style crosses a function boundary. The result is
//! round-for-round and message-for-message identical to the threaded
//! drivers — `crates/core/tests/batched_drivers.rs` holds the two engines
//! to the same realized overlay and round counts — while scaling to
//! hundreds of thousands of nodes (`tests/scale.rs`).
//!
//! The data-dependent while-loop of Algorithm 3 stays in lockstep for the
//! same reason as in direct style: its control values (δ, N, the error
//! flag) are globally aggregated, so every node transitions identically.
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol
//! [`Step`]: dgr_primitives::proto::Step

use super::implicit::Mode;
use super::{ImplicitOutcome, Unrealizable};
use dgr_ncc::{tags, NodeId, NodeProtocol, RoundCtx, Status, WireMsg};
use dgr_primitives::bbst::Bbst;
use dgr_primitives::contacts::ContactTable;
use dgr_primitives::imcast::{CoverSide, Payload};
use dgr_primitives::proto::contacts::ContactsStep;
use dgr_primitives::proto::imcast::ImcastStep;
use dgr_primitives::proto::ops::AggBcastStep;
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::stagger::StaggerStep;
use dgr_primitives::proto::step::{AggOp, Poll, Step};
use dgr_primitives::proto::EstablishCtx;
use dgr_primitives::sort::{Order, SortBackend, SortedPath};
use dgr_primitives::vpath::VPath;
use dgr_primitives::{stagger, PathCtx};
use std::sync::Arc;

/// Which driver behavior the protocol reproduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Algorithm 3, implicit realization (Theorem 11).
    Implicit,
    /// Theorem 13 upper envelope (implicit, multigraph semantics).
    Envelope,
    /// Theorem 12 explicit realization (Algorithm 3 + staggered hand-off;
    /// requires a queueing capacity policy).
    Explicit,
}

impl Flavor {
    fn mode(self) -> Mode {
        match self {
            Flavor::Envelope => Mode::Envelope,
            _ => Mode::Exact,
        }
    }
}

enum CoreStage {
    Sort(SortStep),
    SortedContacts(ContactsStep),
    Delta(AggBcastStep),
    NMax(AggBcastStep),
    Mcast(ImcastStep),
    ErrFlag(AggBcastStep),
    DeltaBound(AggBcastStep),
    Handoff(StaggerStep),
}

/// The post-establishment core of the degree realization — the Algorithm
/// 3 phase loop (and the Theorem 12/13 extensions) as a composable
/// [`Step`].
///
/// The core is parameterized by **two** path scopes:
///
/// * `local` — the [`PathCtx`] the realization happens *on*: the sort,
///   the sorted contacts and the interval multicast all run over this
///   (possibly non-member) view. At the top level it is the whole
///   knowledge path; in Algorithm 6's paper-exact recursion it is the
///   ρ-sorted prefix sub-path, with every non-prefix node holding a
///   non-member view of the same length.
/// * `global` — the path view and BBST the loop's *control aggregations*
///   (δ, N, the error flag) run over. Using the full-network tree keeps
///   every node — member of the sub-path or not — in lockstep with the
///   data-dependent phase loop: non-members contribute the aggregation
///   identity and still learn every control value. At the top level
///   `global` simply equals the establishment context.
pub struct DegreesCore {
    degree: usize,
    flavor: Flavor,
    sort: SortBackend,
    local: PathCtx,
    global_vp: VPath,
    global_tree: Arc<Bbst>,
    stage: CoreStage,
    need: u64,
    outcome: ImplicitOutcome,
    sp: Option<SortedPath>,
    sct: Option<Arc<ContactTable>>,
    delta: usize,
    is_leader: bool,
}

impl DegreesCore {
    /// Builds the core; the first poll opens phase 1. Non-members of
    /// `local` must pass `degree = 0` (the aggregation identity) and the
    /// bitonic sort backend (a non-member cannot idle through the
    /// randomized backend's data-dependent rounds).
    pub fn new(
        degree: usize,
        flavor: Flavor,
        sort: SortBackend,
        local: PathCtx,
        global_vp: VPath,
        global_tree: Arc<Bbst>,
        my_id: NodeId,
    ) -> Self {
        let mut core = DegreesCore {
            degree,
            flavor,
            sort,
            local,
            global_vp,
            global_tree,
            // Placeholder; `begin_phase` installs the real first stage.
            stage: CoreStage::SortedContacts(ContactsStep::new(VPath::non_member(0))),
            need: degree as u64,
            outcome: ImplicitOutcome {
                requested: degree,
                neighbors: Vec::new(),
                phases: 0,
            },
            sp: None,
            sct: None,
            delta: 0,
            is_leader: false,
        };
        core.begin_phase(my_id);
        core
    }

    /// Opens a new Algorithm 3 phase: re-sort by remaining degree.
    fn begin_phase(&mut self, my_id: NodeId) {
        self.outcome.phases += 1;
        self.stage = CoreStage::Sort(SortStep::on_ctx(
            &self.local,
            self.need,
            Order::Descending,
            my_id,
            self.sort,
        ));
    }

    /// An aggregate + broadcast over the fixed global tree.
    fn agg(&self, value: u64, op: AggOp) -> AggBcastStep {
        AggBcastStep::new(self.global_vp, self.global_tree.clone(), value, op)
    }

    /// Closes the run: implicit flavors finish, the explicit flavor first
    /// broadcasts Δ and staggers the edge announcements.
    fn finish(&mut self) -> Option<Poll<Result<ImplicitOutcome, Unrealizable>>> {
        if self.flavor == Flavor::Explicit {
            self.stage = CoreStage::DeltaBound(self.agg(self.degree as u64, AggOp::Max));
            None
        } else {
            Some(Poll::Ready(Ok(std::mem::take(&mut self.outcome))))
        }
    }
}

impl Step for DegreesCore {
    type Out = Result<ImplicitOutcome, Unrealizable>;

    fn poll(&mut self, rctx: &mut RoundCtx<'_>) -> Poll<Self::Out> {
        loop {
            match &mut self.stage {
                CoreStage::Sort(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(sp) => {
                        self.stage = CoreStage::SortedContacts(ContactsStep::new(sp.vp));
                        self.sp = Some(sp);
                    }
                },
                CoreStage::SortedContacts(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(table) => {
                        self.sct = Some(table);
                        self.stage = CoreStage::Delta(self.agg(self.need, AggOp::Max));
                    }
                },
                CoreStage::Delta(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(delta) => {
                        if delta == 0 {
                            if let Some(done) = self.finish() {
                                return done;
                            }
                            continue;
                        }
                        if delta as usize >= self.local.vp.len {
                            // Some node wants more neighbors than exist.
                            return Poll::Ready(Err(Unrealizable));
                        }
                        self.delta = delta as usize;
                        let mine = u64::from(self.local.vp.member && self.need == delta);
                        self.stage = CoreStage::NMax(self.agg(mine, AggOp::Sum));
                    }
                },
                CoreStage::NMax(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(n_max) => {
                        let delta = self.delta;
                        let q = (n_max as usize / (delta + 1)).max(1);
                        let group_span = q * (delta + 1);
                        debug_assert!(group_span <= self.local.vp.len, "groups exceed the path");
                        let sp = self.sp.as_ref().expect("phase without a sorted path");
                        let rank = sp.rank;
                        self.is_leader = self.local.vp.member
                            && rank < group_span
                            && rank.is_multiple_of(delta + 1);
                        let task = self.is_leader.then(|| {
                            (
                                CoverSide::After,
                                delta,
                                Payload {
                                    addr: rctx.id(),
                                    word: 0,
                                },
                            )
                        });
                        self.stage = CoreStage::Mcast(ImcastStep::new(
                            sp.vp,
                            self.sct.clone().expect("phase without sorted contacts"),
                            task,
                        ));
                    }
                },
                CoreStage::Mcast(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(got) => {
                        let mut went_negative = false;
                        if self.is_leader {
                            debug_assert_eq!(
                                self.need, self.delta as u64,
                                "leader without max degree"
                            );
                            self.need = 0;
                        } else if let Some(p) = got {
                            if self.need == 0 {
                                match self.flavor.mode() {
                                    Mode::Exact => went_negative = true,
                                    Mode::Envelope => self.outcome.neighbors.push(p.addr),
                                }
                            } else {
                                self.outcome.neighbors.push(p.addr);
                                self.need -= 1;
                            }
                        }
                        self.stage =
                            CoreStage::ErrFlag(self.agg(u64::from(went_negative), AggOp::Or));
                    }
                },
                CoreStage::ErrFlag(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(err) => {
                        if err != 0 {
                            return Poll::Ready(Err(Unrealizable));
                        }
                        self.begin_phase(rctx.id());
                    }
                },
                CoreStage::DeltaBound(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(delta) => {
                        let (spread, drain) = stagger::plan(delta as usize, rctx.capacity());
                        let sends = self
                            .outcome
                            .neighbors
                            .iter()
                            .map(|&nb| (nb, WireMsg::signal(tags::EDGE)))
                            .collect();
                        self.stage = CoreStage::Handoff(StaggerStep::new(sends, spread, drain));
                    }
                },
                CoreStage::Handoff(s) => match s.poll(rctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(received) => {
                        self.outcome.neighbors.extend(
                            received
                                .iter()
                                .filter(|(_, msg)| msg.tag == tags::EDGE)
                                .map(|(src, _)| *src),
                        );
                        return Poll::Ready(Ok(std::mem::take(&mut self.outcome)));
                    }
                },
            }
        }
    }
}

enum Stage {
    Establish(EstablishCtx),
    // Boxed: the core's stage machine dwarfs the establishment step.
    Core(Box<DegreesCore>),
}

/// The degree-realization state machine at one node: context
/// establishment followed by the [`DegreesCore`] phase loop over the full
/// path. `degree` is this node's requested degree; every node runs the
/// same protocol.
pub struct RealizeDegrees {
    degree: usize,
    flavor: Flavor,
    sort: SortBackend,
    stage: Stage,
}

impl RealizeDegrees {
    /// Builds the protocol for one node (bitonic Theorem 3 backend).
    pub fn new(degree: usize, flavor: Flavor) -> Self {
        Self::with_sort(degree, flavor, SortBackend::Bitonic)
    }

    /// Builds the protocol with an explicit sorting backend.
    pub fn with_sort(degree: usize, flavor: Flavor, sort: SortBackend) -> Self {
        RealizeDegrees {
            degree,
            flavor,
            sort,
            stage: Stage::Establish(EstablishCtx::new()),
        }
    }
}

impl NodeProtocol for RealizeDegrees {
    type Output = Result<ImplicitOutcome, Unrealizable>;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> Status<Self::Output> {
        loop {
            match &mut self.stage {
                Stage::Establish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(ctx) => {
                        let (vp, tree) = (ctx.vp, ctx.tree.clone());
                        self.stage = Stage::Core(Box::new(DegreesCore::new(
                            self.degree,
                            self.flavor,
                            self.sort,
                            ctx,
                            vp,
                            tree,
                            rctx.id(),
                        )));
                    }
                },
                Stage::Core(core) => {
                    return match core.poll(rctx) {
                        Poll::Pending => Status::Continue,
                        Poll::Ready(out) => Status::Done(out),
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};
    use std::collections::HashMap;

    fn run_batched(
        degrees: &[usize],
        config: Config,
        flavor: Flavor,
    ) -> dgr_ncc::RunResult<Result<ImplicitOutcome, Unrealizable>> {
        let net = Network::new(degrees.len(), config);
        let by_id: HashMap<NodeId, usize> = net
            .ids_in_path_order()
            .iter()
            .copied()
            .zip(degrees.iter().copied())
            .collect();
        net.run_protocol(|s| RealizeDegrees::new(by_id[&s.id], flavor))
            .unwrap()
    }

    #[test]
    fn realizes_a_triangle_batched() {
        let result = run_batched(&[2, 2, 2], Config::ncc0(1), Flavor::Implicit);
        assert!(result.metrics.is_clean());
        let edges: usize = result
            .outputs
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().neighbors.len())
            .sum();
        assert_eq!(edges, 3);
    }

    #[test]
    fn rejects_non_graphic_batched() {
        let result = run_batched(&[3, 3, 1, 1], Config::ncc0(3), Flavor::Implicit);
        assert!(result.outputs.iter().all(|(_, r)| r.is_err()));
    }

    #[test]
    fn envelope_accepts_odd_sums_batched() {
        let result = run_batched(&[3, 3, 1, 0], Config::ncc0(5), Flavor::Envelope);
        assert!(result.outputs.iter().all(|(_, r)| r.is_ok()));
    }
}
