//! Theorem 13: approximately realizing (possibly) non-graphic sequences by
//! an **upper envelope** `D' = (d'_1, …, d'_n)` with `d'_i ≥ d_i` and
//! `Σ d'_i ≤ 2 Σ d_i`.
//!
//! The construction is Algorithm 3 with one altered step: a node whose
//! remaining degree would go negative resets it to 0 (i.e. accepts the
//! extra edge) instead of declaring failure. Whenever a node is reset, the
//! re-sorting guarantees it is used as a neighbor at most `d_i` more times,
//! which bounds the total discrepancy `Σ(d'_i - d_i)` by `Σ d_i`.
//!
//! **Multigraph semantics.** Late phases may connect a pair of nodes that
//! is already adjacent (a retired group leader can re-enter a later group).
//! The paper's degree guarantees hold for the resulting *multiset* of
//! edges; `DESIGN.md` §4 documents this. The driver reports duplicate
//! counts so callers can quantify it (it is zero on every exact-mode run).

#[cfg(feature = "threaded")]
use {
    super::{ImplicitOutcome, Unrealizable},
    dgr_ncc::NodeHandle,
    dgr_primitives::PathCtx,
};

/// Runs the upper-envelope realization at one node. `degree` is this
/// node's requested degree; the call must be made by every node
/// simultaneously.
///
/// # Errors
///
/// [`Unrealizable`] only when some degree is `≥ n` (no envelope exists in
/// that case either); every other sequence is realized.
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, degree: usize) -> Result<ImplicitOutcome, Unrealizable> {
    let ctx = PathCtx::establish(h);
    realize_on(h, &ctx, &ctx, degree)
}

/// Envelope realization on an arbitrary established path context (used by
/// Algorithm 6 phase 1 over a sorted-path prefix). Non-members idle
/// through the computation; `global` must be a context spanning every
/// node (it carries the loop-control broadcasts — see
/// [`super::implicit::realize`]'s engine).
///
/// # Errors
///
/// [`Unrealizable`] when some member degree is `≥ ctx.vp.len`.
#[cfg(feature = "threaded")]
pub fn realize_on(
    h: &mut NodeHandle,
    ctx: &PathCtx,
    global: &PathCtx,
    degree: usize,
) -> Result<ImplicitOutcome, Unrealizable> {
    super::implicit::realize_on(h, ctx, global, degree, super::implicit::Mode::Envelope)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver;
    use dgr_ncc::Config;

    /// Checks the two Theorem 13 invariants on a realized envelope.
    fn check_envelope(degrees: &[usize], seed: u64) {
        let out = driver::realize_approx(degrees, Config::ncc0(seed)).unwrap();
        let g = out.expect_realized();
        let sum: usize = degrees.iter().sum();
        let mut envelope_sum = 0;
        for (i, &id) in g.path_order.iter().enumerate() {
            let d_prime = g.multi_degrees[&id];
            assert!(
                d_prime >= degrees[i],
                "node {i}: envelope {d_prime} < requested {}",
                degrees[i]
            );
            envelope_sum += d_prime;
        }
        assert!(
            envelope_sum <= 2 * sum,
            "Σd' = {envelope_sum} exceeds 2Σd = {}",
            2 * sum
        );
    }

    #[test]
    fn envelopes_odd_sum_sequences() {
        check_envelope(&[3, 3, 1, 0], 11);
        check_envelope(&[1, 0, 0], 12);
        check_envelope(&[5, 3, 3, 2, 2, 2, 1, 1], 13);
    }

    #[test]
    fn envelopes_eg_violating_sequences() {
        check_envelope(&[4, 4, 4, 1, 1], 14);
        check_envelope(&[3, 3, 1, 1], 15);
        check_envelope(&[5, 5, 4, 3, 2, 1], 16);
    }

    #[test]
    fn graphic_input_realizes_exactly() {
        // On a graphic sequence the envelope variant must produce an exact
        // realization with zero discrepancy and zero duplicates.
        let degrees = vec![3, 2, 2, 2, 1];
        let out = driver::realize_approx(&degrees, Config::ncc0(17)).unwrap();
        let g = out.expect_realized();
        assert_eq!(g.duplicate_edges, 0);
        let mut want = degrees.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(g.graph.degree_sequence(), want);
    }

    #[test]
    fn rejects_oversized_degrees() {
        let out = driver::realize_approx(&[3, 1, 1], Config::ncc0(18)).unwrap();
        assert!(out.is_unrealizable());
    }
}
