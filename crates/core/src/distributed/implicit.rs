//! Algorithm 3: distributed implicit degree realization in
//! `O~(min{√m, Δ})` rounds (Theorem 11).
//!
//! A parallelized Havel–Hakimi. Each phase:
//!
//! 1. sort the nodes by remaining degree, non-increasing (Theorem 3);
//! 2. broadcast the maximum remaining degree `δ`; if `δ = 0`, stop;
//! 3. broadcast `N`, the multiplicity of `δ`, and let
//!    `q = max(1, ⌊N/(δ+1)⌋)`;
//! 4. split the first `q(δ+1)` sorted ranks into `q` star groups; each
//!    group's first node multicasts its ID to the other `δ` members
//!    (interval multicast on the sorted path), which store the edge and
//!    decrement their remaining degree, while the leader is fully
//!    satisfied and drops to 0;
//! 5. a member whose degree would go negative triggers a global
//!    `UNREALIZABLE` flag (aggregated + broadcast).
//!
//! Lemma 10: every phase (or every second phase) removes the current
//! maximum degree, and at most `O(√m)` phases involve degrees above `√m`,
//! so the loop runs `O(min{√m, Δ})` times; each phase is `O~(1)` rounds.

use crate::sequence::DegreeSequence;
#[cfg(feature = "threaded")]
use {
    super::{ImplicitOutcome, Unrealizable},
    dgr_ncc::NodeHandle,
    dgr_primitives::imcast::{self, CoverSide, Payload},
    dgr_primitives::sort::{self, Order},
    dgr_primitives::{contacts, ops, PathCtx},
};

/// Degree-handling mode for the shared phase engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Exact realization: a negative degree aborts with `UNREALIZABLE`.
    Exact,
    /// Upper-envelope realization (Theorem 13): saturated nodes accept
    /// extra edges instead of failing.
    Envelope,
}

/// Runs Algorithm 3 at one node. `degree` is this node's requested degree
/// `d(v)`; the call must be made by every node simultaneously.
///
/// # Errors
///
/// [`Unrealizable`] (at every node consistently) when the global sequence
/// is not graphic.
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, degree: usize) -> Result<ImplicitOutcome, Unrealizable> {
    let ctx = PathCtx::establish(h);
    realize_on(h, &ctx, &ctx, degree, Mode::Exact)
}

/// The phase engine shared by the exact and envelope realizations, running
/// on an arbitrary established path context (this generality is what lets
/// Algorithm 6 realize a degree sequence over a sorted-path *prefix*).
/// Non-members of `ctx.vp` idle through the per-phase computations — but
/// the while-loop is data-dependent, so its control values (δ, N, the
/// error flag) are aggregated over `global`, a context in which **every**
/// node of the network is a member (pass `ctx` again at top level);
/// non-members contribute the identity.
#[cfg(feature = "threaded")]
pub(crate) fn realize_on(
    h: &mut NodeHandle,
    ctx: &PathCtx,
    global: &PathCtx,
    degree: usize,
    mode: Mode,
) -> Result<ImplicitOutcome, Unrealizable> {
    debug_assert!(
        global.vp.member,
        "global control context must span all nodes"
    );
    let len = ctx.vp.len;
    let mut need = if ctx.vp.member { degree as u64 } else { 0 };
    let mut outcome = ImplicitOutcome {
        requested: degree,
        neighbors: Vec::new(),
        phases: 0,
    };

    loop {
        outcome.phases += 1;

        // Step 1: sort by remaining degree, non-increasing.
        let sp = sort::sort_at(
            h,
            &ctx.vp,
            &ctx.contacts,
            ctx.position,
            need,
            Order::Descending,
        );
        let sorted_contacts = contacts::build(h, &sp.vp);

        // Step 2: broadcast δ (on the fixed global tree — it never
        // changes, only the logical sorted order does).
        let delta = ops::aggregate_broadcast(h, &global.vp, &global.tree, need, u64::max);
        if delta == 0 {
            break;
        }
        if delta as usize >= len {
            // Some node wants more neighbors than exist: unrealizable even
            // as an envelope.
            return Err(Unrealizable);
        }
        let delta = delta as usize;

        // Step 3: broadcast N = |{x : d(x) = δ}|.
        let n_max = ops::aggregate_broadcast(
            h,
            &global.vp,
            &global.tree,
            u64::from(ctx.vp.member && need == delta as u64),
            |a, b| a + b,
        ) as usize;
        let q = (n_max / (delta + 1)).max(1);
        let group_span = q * (delta + 1);
        debug_assert!(group_span <= len, "groups exceed the path");

        // Step 4: q disjoint star groups via interval multicast.
        let rank = sp.rank;
        let is_leader = ctx.vp.member && rank < group_span && rank.is_multiple_of(delta + 1);
        let task = is_leader.then(|| {
            (
                CoverSide::After,
                delta,
                Payload {
                    addr: h.id(),
                    word: 0,
                },
            )
        });
        let got = imcast::interval_multicast(h, &sp.vp, &sorted_contacts, task);

        // Step 5: local updates + global error detection.
        let mut went_negative = false;
        if is_leader {
            debug_assert_eq!(need, delta as u64, "leader without max degree");
            need = 0;
        } else if let Some(p) = got {
            if need == 0 {
                match mode {
                    Mode::Exact => went_negative = true,
                    Mode::Envelope => outcome.neighbors.push(p.addr),
                }
            } else {
                outcome.neighbors.push(p.addr);
                need -= 1;
            }
        }
        let err = ops::aggregate_broadcast(
            h,
            &global.vp,
            &global.tree,
            u64::from(went_negative),
            |a, b| a | b,
        );
        if err != 0 {
            return Err(Unrealizable);
        }
    }
    Ok(outcome)
}

/// The Lemma 10 phase bound: `min{√m, Δ}` up to constants — exposed so the
/// experiment harness can compare measured phase counts against it.
pub fn phase_bound(seq: &DegreeSequence) -> f64 {
    let m = seq.edge_count() as f64;
    let delta = seq.max_degree() as f64;
    m.sqrt().min(delta)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {

    use crate::driver;
    use dgr_ncc::Config;

    #[test]
    fn realizes_a_triangle() {
        let out = driver::realize_implicit(&[2, 2, 2], Config::ncc0(1)).unwrap();
        let g = out.expect_realized();
        assert_eq!(g.graph.edge_count(), 3);
        assert_eq!(g.graph.degree_sequence(), vec![2, 2, 2]);
        assert!(g.metrics.is_clean());
    }

    #[test]
    fn realizes_k5_and_stars() {
        for degrees in [
            vec![4, 4, 4, 4, 4],
            vec![5, 1, 1, 1, 1, 1],
            vec![3, 3, 2, 2, 1, 1],
            vec![0, 0, 0],
            vec![1, 1, 0, 0],
        ] {
            let out = driver::realize_implicit(&degrees, Config::ncc0(7)).unwrap();
            let g = out.expect_realized();
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(g.graph.degree_sequence(), want, "{degrees:?}");
            assert_eq!(g.duplicate_edges, 0, "{degrees:?}");
        }
    }

    #[test]
    fn rejects_non_graphic_sequences() {
        for degrees in [
            vec![1, 0],             // odd sum
            vec![3, 3, 1, 1],       // EG violation
            vec![4, 4, 4, 1, 1],    // EG violation
            vec![3, 1, 1],          // degree ≥ n handled mid-run
            vec![5, 5, 4, 3, 2, 1], // classic
        ] {
            let out = driver::realize_implicit(&degrees, Config::ncc0(3)).unwrap();
            assert!(out.is_unrealizable(), "{degrees:?} was accepted");
        }
    }

    #[test]
    fn phase_count_is_within_lemma10() {
        // A 6-regular sequence on 32 nodes: Δ = 6, so at most ~2Δ phases.
        let degrees = vec![6usize; 32];
        let out = driver::realize_implicit(&degrees, Config::ncc0(5)).unwrap();
        let g = out.expect_realized();
        assert!(
            g.phases <= 2 * 6 + 2,
            "phases {} exceed Lemma 10 allowance",
            g.phases
        );
    }

    #[test]
    fn single_node_zero_degree() {
        let out = driver::realize_implicit(&[0], Config::ncc0(1)).unwrap();
        let g = out.expect_realized();
        assert_eq!(g.graph.edge_count(), 0);
        let out = driver::realize_implicit(&[1], Config::ncc0(1)).unwrap();
        assert!(out.is_unrealizable());
    }
}
