//! Assembly and verification of distributed realization outputs.
//!
//! The simulator returns per-node edge claims; these functions reconstruct
//! the realized overlay as a [`Graph`], count multigraph duplicates, and —
//! for explicit realizations — check the symmetry property that defines
//! explicitness (both endpoints list every edge).

use dgr_graph::Graph;
use dgr_ncc::NodeId;
use std::collections::BTreeMap;

/// An assembled overlay: the simple graph plus multiset bookkeeping.
#[derive(Clone, Debug)]
pub struct Assembled {
    /// The realized overlay as a simple graph (duplicates collapsed).
    pub graph: Graph,
    /// Multiset degree of every node (duplicates counted — the quantity
    /// the Theorem 13 envelope guarantees speak about). Ordered so that
    /// consumers may iterate it without leaking hash order into anything
    /// they build.
    pub multi_degrees: BTreeMap<NodeId, usize>,
    /// Number of duplicate edge claims (0 for every exact realization).
    pub duplicate_edges: usize,
}

/// Assembles an *implicit* realization from per-node stored-edge lists:
/// edge `(u, v)` appears once, at the storing endpoint.
pub fn assemble_implicit(
    nodes: &[NodeId],
    stored: impl IntoIterator<Item = (NodeId, Vec<NodeId>)>,
) -> Assembled {
    let mut graph = Graph::new(nodes.iter().copied());
    let mut multi_degrees: BTreeMap<NodeId, usize> = nodes.iter().map(|&id| (id, 0)).collect();
    let mut duplicate_edges = 0;
    for (u, neighbors) in stored {
        for v in neighbors {
            *multi_degrees.get_mut(&u).expect("unknown claimant") += 1;
            *multi_degrees.get_mut(&v).expect("unknown neighbor") += 1;
            if graph.add_edge(u, v).is_err() {
                duplicate_edges += 1;
            }
        }
    }
    Assembled {
        graph,
        multi_degrees,
        duplicate_edges,
    }
}

/// Assembles an *explicit* realization from per-node full neighbor lists,
/// checking the defining symmetry: `v ∈ list(u) ⇔ u ∈ list(v)`.
///
/// # Errors
///
/// A description of the first asymmetric edge claim found.
pub fn assemble_explicit(
    nodes: &[NodeId],
    lists: &BTreeMap<NodeId, Vec<NodeId>>,
) -> Result<Assembled, String> {
    // Normalize: each claimed edge (u,v) keyed min/max; must be claimed by
    // exactly both endpoints. Both maps here are ordered: the iteration
    // order decides edge-insertion order (hence `Graph` adjacency-list
    // order) and which asymmetric claim gets blamed first, so it must be
    // a function of the claims alone, not of a per-process hash seed.
    let mut claims: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    for (&u, neighbors) in lists {
        for &v in neighbors {
            if u == v {
                return Err(format!("self-claim at {u}"));
            }
            *claims.entry((u.min(v), u.max(v))).or_default() += 1;
        }
    }
    let mut graph = Graph::new(nodes.iter().copied());
    let mut multi_degrees: BTreeMap<NodeId, usize> = nodes.iter().map(|&id| (id, 0)).collect();
    let mut duplicate_edges = 0;
    for (&(u, v), &count) in &claims {
        if count % 2 != 0 {
            return Err(format!(
                "edge ({u}, {v}) claimed asymmetrically ({count} claims)"
            ));
        }
        let copies = count / 2;
        duplicate_edges += copies - 1;
        *multi_degrees.get_mut(&u).ok_or("unknown endpoint")? += copies;
        *multi_degrees.get_mut(&v).ok_or("unknown endpoint")? += copies;
        graph.add_edge(u, v).map_err(|e| format!("bad edge: {e}"))?;
    }
    Ok(Assembled {
        graph,
        multi_degrees,
        duplicate_edges,
    })
}

/// Do the realized (simple-graph) degrees match the requested degrees
/// exactly? Returns the first mismatch — "first" in ID order, so the
/// blamed node is deterministic.
pub fn degrees_match(graph: &Graph, requested: &BTreeMap<NodeId, usize>) -> Result<(), String> {
    for (&id, &want) in requested {
        let got = graph.degree_of(id);
        if got != want {
            return Err(format!("node {id}: degree {got}, requested {want}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_assembly_counts_duplicates() {
        let nodes = [1, 2, 3];
        let a = assemble_implicit(&nodes, vec![(1, vec![2]), (2, vec![3]), (3, vec![1, 2])]);
        // (3,2) duplicates (2,3).
        assert_eq!(a.duplicate_edges, 1);
        assert_eq!(a.graph.edge_count(), 3);
        assert_eq!(a.multi_degrees[&2], 3); // multiset counts the duplicate
        assert_eq!(a.multi_degrees[&1], 2);
    }

    #[test]
    fn explicit_assembly_requires_symmetry() {
        let nodes = [1, 2];
        let mut lists = BTreeMap::new();
        lists.insert(1, vec![2]);
        lists.insert(2, vec![]);
        assert!(assemble_explicit(&nodes, &lists).is_err());
        lists.insert(2, vec![1]);
        let a = assemble_explicit(&nodes, &lists).unwrap();
        assert_eq!(a.graph.edge_count(), 1);
        assert_eq!(a.duplicate_edges, 0);
    }

    #[test]
    fn degree_match_reports_mismatch() {
        let g = Graph::from_edges([1, 2, 3], [(1, 2)]).unwrap();
        let want: BTreeMap<_, _> = [(1, 1), (2, 1), (3, 0)].into();
        assert!(degrees_match(&g, &want).is_ok());
        let want: BTreeMap<_, _> = [(1, 2)].into();
        assert!(degrees_match(&g, &want).is_err());
    }
}
