//! The sequential Havel–Hakimi algorithm (§3.3 of the paper, Theorem 9):
//! `D` (non-increasing) is graphic iff the sequence obtained by removing
//! `d_1` and decrementing the next `d_1` entries is graphic — which yields
//! both a recognizer and a constructor.
//!
//! Two implementations:
//!
//! * [`realize`] — heap-based, `O(m log n)`: the production constructor and
//!   the baseline for the sequential benches.
//! * [`realize_naive`] — the textbook re-sort-every-step version,
//!   `O(n² log n)`: kept as a cross-validation oracle.

use crate::sequence::{DegreeSequence, RealizeError};
use std::collections::BinaryHeap;

/// A sequential realization: edges over node *indices* `0..n` (index `i`
/// has degree `degrees[i]` in the input order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Realization {
    /// Edge list over input indices.
    pub edges: Vec<(usize, usize)>,
}

impl Realization {
    /// The degree of every index, for verification.
    pub fn degrees(&self, n: usize) -> Vec<usize> {
        let mut d = vec![0; n];
        for &(u, v) in &self.edges {
            d[u] += 1;
            d[v] += 1;
        }
        d
    }
}

/// Havel–Hakimi with a max-heap: repeatedly pop the maximum-degree node and
/// connect it to the next `d` highest-degree nodes.
///
/// # Errors
///
/// [`RealizeError`] when the sequence is not graphic (the cheap conditions
/// are reported specifically; otherwise [`RealizeError::NotGraphic`]).
pub fn realize(seq: &DegreeSequence) -> Result<Realization, RealizeError> {
    seq.quick_check()?;
    let mut heap: BinaryHeap<(usize, usize)> = seq
        .degrees()
        .iter()
        .enumerate()
        .filter(|(_, &d)| d > 0)
        .map(|(i, &d)| (d, i))
        .collect();
    let mut edges = Vec::with_capacity(seq.edge_count());
    let mut scratch = Vec::new();
    while let Some((d, u)) = heap.pop() {
        debug_assert!(d > 0);
        scratch.clear();
        for _ in 0..d {
            match heap.pop() {
                Some((dv, v)) => {
                    debug_assert!(dv > 0);
                    edges.push((u, v));
                    if dv > 1 {
                        scratch.push((dv - 1, v));
                    }
                }
                // Fewer than d positive-degree nodes remain.
                None => return Err(RealizeError::NotGraphic),
            }
        }
        heap.extend(scratch.drain(..));
    }
    Ok(Realization { edges })
}

/// The textbook Havel–Hakimi: materialize the sequence, re-sort after every
/// satisfaction step. Used as an oracle in tests.
///
/// # Errors
///
/// [`RealizeError`] when the sequence is not graphic.
pub fn realize_naive(seq: &DegreeSequence) -> Result<Realization, RealizeError> {
    seq.quick_check()?;
    // (remaining degree, original index), kept sorted non-increasing.
    let mut rem: Vec<(usize, usize)> = seq
        .degrees()
        .iter()
        .enumerate()
        .map(|(i, &d)| (d, i))
        .collect();
    let mut edges = Vec::new();
    while !rem.is_empty() {
        rem.sort_unstable_by(|a, b| b.cmp(a));
        let (d, u) = rem[0];
        if d == 0 {
            break;
        }
        if d >= rem.len() {
            return Err(RealizeError::NotGraphic);
        }
        rem[0].0 = 0;
        for entry in rem.iter_mut().skip(1).take(d) {
            if entry.0 == 0 {
                return Err(RealizeError::NotGraphic);
            }
            entry.0 -= 1;
            edges.push((u, entry.1));
        }
    }
    Ok(Realization { edges })
}

/// Is the sequence graphic, by attempting a Havel–Hakimi construction?
/// (Must agree with Erdős–Gallai — property-tested.)
pub fn is_graphic_hh(seq: &DegreeSequence) -> bool {
    realize(seq).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(seq: &DegreeSequence, r: &Realization) {
        // Degrees must match exactly.
        assert_eq!(&r.degrees(seq.len()), seq.degrees());
        // Simple graph: no self-loops or duplicate edges.
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &r.edges {
            assert_ne!(u, v, "self-loop");
            assert!(seen.insert((u.min(v), u.max(v))), "duplicate edge");
        }
    }

    #[test]
    fn realizes_basic_sequences() {
        for degrees in [
            vec![],
            vec![0],
            vec![1, 1],
            vec![2, 2, 2],
            vec![3, 3, 3, 3],
            vec![3, 2, 2, 2, 1],
            vec![4, 4, 4, 4, 4], // K5
            vec![2, 2, 2, 2, 2, 2],
            vec![5, 3, 3, 3, 2, 2], // mixed
        ] {
            let seq = DegreeSequence::new(degrees.clone());
            let r = realize(&seq).unwrap_or_else(|e| panic!("{degrees:?}: {e}"));
            verify(&seq, &r);
            let rn = realize_naive(&seq).unwrap();
            verify(&seq, &rn);
        }
    }

    #[test]
    fn rejects_non_graphic() {
        for degrees in [
            vec![1],
            vec![3, 3, 1, 1],
            vec![4, 4, 4, 1, 1],
            vec![5, 5, 4, 3, 2, 1],
            vec![2, 2],
        ] {
            let seq = DegreeSequence::new(degrees.clone());
            assert!(realize(&seq).is_err(), "{degrees:?} accepted");
            assert!(realize_naive(&seq).is_err(), "{degrees:?} accepted (naive)");
        }
    }

    #[test]
    fn heap_and_naive_agree_on_graphicness_exhaustively() {
        fn rec(buf: &mut Vec<usize>, len: usize) {
            if buf.len() == len {
                let seq = DegreeSequence::new(buf.clone());
                assert_eq!(
                    realize(&seq).is_ok(),
                    realize_naive(&seq).is_ok(),
                    "mismatch on {buf:?}"
                );
                assert_eq!(
                    realize(&seq).is_ok(),
                    crate::erdos_gallai::is_graphic(buf),
                    "HH vs EG mismatch on {buf:?}"
                );
                return;
            }
            for d in 0..4 {
                buf.push(d);
                rec(buf, len);
                buf.pop();
            }
        }
        rec(&mut Vec::new(), 4);
        rec(&mut Vec::new(), 5);
    }
}
