//! Degree-sequence realization — the primary contribution of *Distributed
//! Graph Realizations* (IPDPS 2020), plus the classical sequential theory it
//! builds on.
//!
//! # Sequential layer
//!
//! * [`DegreeSequence`] — the input object, with its basic statistics
//!   (`Δ`, `m = Σd/2`, parity).
//! * [`erdos_gallai::is_graphic`] — the Erdős–Gallai characterization
//!   (1960): `D` is graphic iff
//!   `Σ_{i≤k} d_i ≤ k(k-1) + Σ_{i>k} min(d_i, k)` for all `k`.
//! * [`havel_hakimi::realize`] — the Havel–Hakimi construction (§3.3,
//!   Theorem 9): repeatedly satisfy a maximum-degree node by connecting it
//!   to the next-highest-degree nodes.
//!
//! # Distributed layer (NCC model)
//!
//! * [`distributed::implicit`] — Algorithm 3: implicit realization in
//!   `O~(min{√m, Δ})` rounds (Theorem 11). A parallelized Havel–Hakimi: in
//!   every phase the nodes sort themselves by remaining degree, the maximum
//!   degree `δ` and its multiplicity `N` are broadcast, and
//!   `q = max(1, ⌊N/(δ+1)⌋)` disjoint star groups are satisfied at once by
//!   interval multicast.
//! * [`distributed::explicit`] — Theorem 12: the implicit realization is
//!   made explicit by a staggered hand-off of edge announcements, in
//!   `O(Δ/log n + log n)` additional rounds.
//! * [`distributed::approx`] — Theorem 13: for non-graphic `D`, realize an
//!   upper envelope `D'` with `d'_i ≥ d_i` and `Σd' ≤ 2Σd` (multigraph
//!   semantics; see `DESIGN.md`).
//!
//! The [`driver`] module wires degree assignments onto simulated networks
//! and re-assembles/verifies the distributed outputs; [`verify`] holds the
//! checks shared by tests, examples and benches. Its one non-deprecated
//! entry point, [`realize_degrees`], is the **engine room** of the
//! `dgr::Realization` facade builder — use the builder from applications,
//! and the engine room from white-box internals (the differential suites
//! in `crates/core/tests`).

pub mod distributed;
pub mod driver;
pub mod erdos_gallai;
pub mod havel_hakimi;
pub mod sequence;
pub mod verify;

pub use distributed::{DistributedRealization, ImplicitOutcome, Unrealizable};
#[allow(deprecated)]
#[cfg(feature = "threaded")]
pub use driver::{realize_approx, realize_explicit, realize_implicit, realize_masked_threaded};
#[allow(deprecated)]
pub use driver::{
    realize_approx_batched, realize_explicit_batched, realize_implicit_batched,
    realize_masked_batched, realize_prefix_batched,
};
pub use driver::{realize_degrees, DegreesRun, DriverOutput};
pub use havel_hakimi::Realization;
pub use sequence::{DegreeSequence, RealizeError};
