//! Connectivity-threshold workloads: per-node `ρ(v)` values for the
//! Section 6 realizations (the `ρ`-reduction means a threshold *vector*
//! per node collapses to one value, so workloads are `Vec<ρ>`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform thresholds: `ρ(v)` i.i.d. uniform in `[lo, hi]`, capped at
/// `n-1` (no node can have more edge-disjoint paths than neighbors).
pub fn uniform_thresholds(n: usize, lo: usize, hi: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = n.saturating_sub(1);
    (0..n)
        .map(|_| rng.gen_range(lo.min(cap)..=hi.min(cap)).max(1.min(cap)))
        .collect()
}

/// Tiered thresholds, the "survivable network" shape of Frank–Chou \[15\]:
/// a small core with high requirements, a middle tier, and a large edge
/// tier with requirement 1.
pub fn tiered_thresholds(n: usize, core: usize, core_rho: usize) -> Vec<usize> {
    let cap = n.saturating_sub(1);
    let core = core.min(n);
    let mid = (n / 4).min(n - core);
    (0..n)
        .map(|i| {
            if i < core {
                core_rho.min(cap)
            } else if i < core + mid {
                (core_rho / 2).max(1).min(cap)
            } else {
                1.min(cap)
            }
        })
        .collect()
}

/// One demanding hub, everyone else at 1: maximizes the gap between `Δ`
/// and typical load (the NCC0 algorithm's `O~(Δ)` round bill is all hub).
pub fn single_hub_thresholds(n: usize, hub_rho: usize) -> Vec<usize> {
    let cap = n.saturating_sub(1);
    (0..n)
        .map(|i| if i == 0 { hub_rho.min(cap) } else { 1.min(cap) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform_thresholds(50, 2, 6, 1);
        assert!(t.iter().all(|&r| (2..=6).contains(&r)));
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn uniform_caps_at_n_minus_1() {
        let t = uniform_thresholds(4, 10, 20, 2);
        assert!(t.iter().all(|&r| r <= 3));
    }

    #[test]
    fn tiers_are_ordered() {
        let t = tiered_thresholds(40, 4, 8);
        assert!(t[..4].iter().all(|&r| r == 8));
        assert!(t[4..14].iter().all(|&r| r == 4));
        assert!(t[14..].iter().all(|&r| r == 1));
    }

    #[test]
    fn single_hub_shape() {
        let t = single_hub_thresholds(10, 5);
        assert_eq!(t[0], 5);
        assert!(t[1..].iter().all(|&r| r == 1));
    }
}
