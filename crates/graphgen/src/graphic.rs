//! Random graphic degree sequences of controlled shape.
//!
//! All generators draw a raw sequence from a target distribution and then
//! [`repair_to_graphic`]: clamp degrees to `n-1`, fix the parity of the
//! sum, and walk the largest degrees down until the Erdős–Gallai
//! inequalities hold. Repair touches as little probability mass as it can,
//! so the realized shape (regular / power-law / star-heavy) survives.

use dgr_core::erdos_gallai::is_graphic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Makes an arbitrary degree list graphic in place, preserving its rough
/// shape: clamps to `n-1`, evens the sum (decrementing one odd-positioned
/// positive degree), then repeatedly decrements the largest degree by 2
/// while Erdős–Gallai fails.
///
/// Always terminates: the all-zero sequence is graphic.
pub fn repair_to_graphic(degrees: &mut [usize]) {
    let n = degrees.len();
    if n == 0 {
        return;
    }
    for d in degrees.iter_mut() {
        *d = (*d).min(n - 1);
    }
    if degrees.iter().sum::<usize>() % 2 != 0 {
        let i = degrees
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, _)| i)
            .next_back()
            .expect("odd sum implies a positive degree");
        degrees[i] -= 1;
    }
    while !is_graphic(degrees) {
        // Reduce the most extreme degree, keeping parity.
        let i = degrees
            .iter()
            .enumerate()
            .max_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("non-empty");
        debug_assert!(degrees[i] >= 2, "repair underflow on a bad sequence");
        degrees[i] -= 2;
    }
}

/// A uniformly random graphic sequence: degrees i.i.d. uniform in
/// `[0, d_max]`, then repaired.
pub fn random_graphic_sequence(n: usize, d_max: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = d_max.min(n.saturating_sub(1));
    let mut d: Vec<usize> = (0..n).map(|_| rng.gen_range(0..=cap)).collect();
    repair_to_graphic(&mut d);
    d
}

/// A near-`k`-regular graphic sequence: every degree is `k ± 1` (jitter
/// keeps the sorting non-trivial), then repaired.
pub fn near_regular_sequence(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d: Vec<usize> = (0..n)
        .map(|_| {
            let jitter: i64 = rng.gen_range(-1..=1);
            (k as i64 + jitter).max(0) as usize
        })
        .collect();
    repair_to_graphic(&mut d);
    d
}

/// A power-law-ish graphic sequence: `d_i ∝ (i+1)^(-1/(γ-1))` scaled so the
/// maximum is `d_max`, shuffled, then repaired. `γ ≈ 2–3` matches the
/// heavy-tailed degree profiles P2P overlays care about.
pub fn power_law_sequence(n: usize, d_max: usize, gamma: f64, seed: u64) -> Vec<usize> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = d_max.min(n.saturating_sub(1)).max(1);
    let alpha = 1.0 / (gamma - 1.0);
    let mut d: Vec<usize> = (0..n)
        .map(|i| {
            let rank = (i + 1) as f64;
            let v = (cap as f64 * rank.powf(-alpha)).round() as usize;
            v.max(1)
        })
        .collect();
    use rand::seq::SliceRandom;
    d.shuffle(&mut rng);
    repair_to_graphic(&mut d);
    d
}

/// A star-heavy sequence: `hubs` nodes of degree ≈ `n-1`, everyone else
/// degree `base`; the Theorem 19 shape where explicit realization must pay
/// `Ω(Δ/log n)`.
pub fn star_heavy_sequence(n: usize, hubs: usize, base: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs = hubs.min(n);
    let mut d: Vec<usize> = (0..n)
        .map(|i| {
            if i < hubs {
                n - 1
            } else {
                rng.gen_range(base.saturating_sub(1)..=base + 1)
            }
        })
        .collect();
    repair_to_graphic(&mut d);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_outputs_are_graphic() {
        for seed in 0..20 {
            let d = random_graphic_sequence(50, 30, seed);
            assert!(is_graphic(&d), "seed {seed}: {d:?}");
        }
    }

    #[test]
    fn repair_handles_extremes() {
        let mut d = vec![100, 100, 100]; // way over n-1
        repair_to_graphic(&mut d);
        assert!(is_graphic(&d));
        let mut d = vec![0, 0, 0];
        repair_to_graphic(&mut d);
        assert_eq!(d, vec![0, 0, 0]);
        let mut d: Vec<usize> = vec![];
        repair_to_graphic(&mut d);
        assert!(d.is_empty());
        let mut d = vec![1]; // odd sum, single node
        repair_to_graphic(&mut d);
        assert_eq!(d, vec![0]);
    }

    #[test]
    fn near_regular_stays_near_k() {
        let d = near_regular_sequence(100, 8, 7);
        assert!(is_graphic(&d));
        let within = d.iter().filter(|&&x| (7..=9).contains(&x)).count();
        assert!(within >= 95, "only {within} degrees near 8");
    }

    #[test]
    fn power_law_is_heavy_tailed_and_graphic() {
        let d = power_law_sequence(200, 60, 2.5, 3);
        assert!(is_graphic(&d));
        let max = *d.iter().max().unwrap();
        let light = d.iter().filter(|&&x| x <= 3).count();
        assert!(max >= 30, "max {max} not heavy");
        assert!(light >= 120, "tail not light: {light}");
    }

    #[test]
    fn star_heavy_has_hubs() {
        let d = star_heavy_sequence(64, 2, 2, 5);
        assert!(is_graphic(&d));
        let hubs = d.iter().filter(|&&x| x >= 50).count();
        assert!(hubs >= 1, "no hub survived repair: {d:?}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_graphic_sequence(40, 10, 9),
            random_graphic_sequence(40, 10, 9)
        );
        assert_ne!(
            random_graphic_sequence(40, 10, 9),
            random_graphic_sequence(40, 10, 10)
        );
    }
}
