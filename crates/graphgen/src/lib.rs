//! Seeded workload generators for the realization experiments: graphic
//! degree sequences of several shapes, tree-realizable sequences,
//! connectivity-threshold vectors, and the adversarial families behind the
//! paper's lower bounds (Theorems 19–20).
//!
//! Everything is deterministic in the seed, so every experiment in
//! `EXPERIMENTS.md` is replayable bit-for-bit.

mod graphic;
mod lower_bound;
mod thresholds;
mod trees;

pub use graphic::{
    near_regular_sequence, power_law_sequence, random_graphic_sequence, repair_to_graphic,
    star_heavy_sequence,
};
pub use lower_bound::{delta_regular_family, sqrt_m_family};
pub use thresholds::{single_hub_thresholds, tiered_thresholds, uniform_thresholds};
pub use trees::{caterpillar_tree_sequence, random_tree_sequence, star_tree_sequence};
