//! The adversarial degree-sequence families behind the paper's lower
//! bounds (Section 7, Theorems 19–20).
//!
//! * [`sqrt_m_family`] — the `D*_{n,m}` family: `k = ⌊√m⌋` nodes carry all
//!   the degree, everyone else gets 0. Any implicit realization forces the
//!   heavy nodes to jointly learn `Ω(m)` IDs, so some node must learn
//!   `Ω(√m)` of them — `Ω̃(√m)` rounds.
//! * [`delta_regular_family`] — `d_i = Δ` for all `i`: every node must
//!   learn (or be learned by) `Δ` endpoints — `Ω̃(Δ)` rounds, and
//!   `Ω(Δ/log n)` for explicit realizations (Theorem 19).

use dgr_core::erdos_gallai::is_graphic;

/// The `D*` family: `k = ⌊√m⌋` heavy nodes forming (approximately) a
/// clique among themselves — `d_i = k-1` for `i < k`, else 0 — which packs
/// `m ≈ k²/2` edges onto `√m`-many nodes.
///
/// # Panics
///
/// Panics if `n` is too small to host the clique.
pub fn sqrt_m_family(n: usize, m: usize) -> Vec<usize> {
    let k = (m as f64).sqrt().floor() as usize;
    let k = k.max(2).min(n);
    let mut d = vec![0usize; n];
    for item in d.iter_mut().take(k) {
        *item = k - 1;
    }
    // K_k needs k nodes; parity is automatic (k(k-1) is even).
    debug_assert!(is_graphic(&d), "K_k profile must be graphic");
    d
}

/// The `Δ`-regular family: `d_i = Δ` everywhere (padded to even `nΔ` by
/// bumping `n` odd/even compatibility onto the caller — asserted graphic).
///
/// # Panics
///
/// Panics when `nΔ` is odd or `Δ ≥ n` (no Δ-regular graph exists).
pub fn delta_regular_family(n: usize, delta: usize) -> Vec<usize> {
    assert!(delta < n, "Δ-regular needs Δ < n");
    assert!((n * delta).is_multiple_of(2), "nΔ must be even");
    let d = vec![delta; n];
    debug_assert!(is_graphic(&d));
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqrt_m_family_is_graphic_and_concentrated() {
        for m in [4usize, 16, 100, 400] {
            let d = sqrt_m_family(100, m);
            assert!(is_graphic(&d), "m={m}");
            let k = (m as f64).sqrt() as usize;
            let heavy = d.iter().filter(|&&x| x > 0).count();
            assert!(heavy.abs_diff(k) <= 1, "m={m}: {heavy} heavy nodes");
            // Edge count is ~m.
            let edges: usize = d.iter().sum::<usize>() / 2;
            assert!(edges <= m && edges * 2 >= m / 2, "m={m} edges={edges}");
        }
    }

    #[test]
    fn delta_regular_is_graphic() {
        let d = delta_regular_family(16, 5);
        assert!(is_graphic(&d));
        assert!(d.iter().all(|&x| x == 5));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn delta_regular_rejects_odd_products() {
        let _ = delta_regular_family(5, 3);
    }
}
