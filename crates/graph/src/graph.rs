//! A simple undirected graph over arbitrary `u64` node IDs.
//!
//! Realization outputs are edge lists over NCC node IDs (sparse, random
//! 64-bit values), so the graph keeps an ID↔index mapping and exposes both
//! views. Parallel edges and self-loops are rejected: degree-sequence
//! realizations must be *simple* graphs.

// `index` is lookup-only (never iterated), so hash order cannot leak;
// `DegreeMap` IS iterated by consumers and therefore ordered.
use std::collections::{BTreeMap, HashMap};

/// Node identifier type (matches `dgr_ncc::NodeId`).
pub type NodeId = u64;

/// A map from node ID to its degree (ordered: consumers iterate it).
pub type DegreeMap = BTreeMap<NodeId, usize>;

/// A simple undirected graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// An empty graph over the given vertex set (isolated vertices count:
    /// a realization may legitimately assign degree 0).
    ///
    /// # Panics
    ///
    /// Panics on duplicate IDs.
    pub fn new(ids: impl IntoIterator<Item = NodeId>) -> Self {
        let ids: Vec<NodeId> = ids.into_iter().collect();
        let mut index = HashMap::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            let dup = index.insert(id, i);
            assert!(dup.is_none(), "duplicate node ID {id}");
        }
        let adj = vec![Vec::new(); ids.len()];
        Graph {
            ids,
            index,
            adj,
            edges: 0,
        }
    }

    /// Builds a graph from a vertex set and an edge list.
    ///
    /// # Errors
    ///
    /// Returns a description of the first self-loop, duplicate edge, or
    /// unknown endpoint encountered — the verification failures we want to
    /// catch in realization outputs.
    pub fn from_edges(
        ids: impl IntoIterator<Item = NodeId>,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, String> {
        let mut g = Graph::new(ids);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds one undirected edge.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, unknown endpoints and duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), String> {
        if u == v {
            return Err(format!("self-loop at {u}"));
        }
        let &ui = self
            .index
            .get(&u)
            .ok_or_else(|| format!("unknown node {u}"))?;
        let &vi = self
            .index
            .get(&v)
            .ok_or_else(|| format!("unknown node {v}"))?;
        if self.adj[ui].contains(&vi) {
            return Err(format!("duplicate edge ({u}, {v})"));
        }
        self.adj[ui].push(vi);
        self.adj[vi].push(ui);
        self.edges += 1;
        Ok(())
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// All node IDs, in insertion order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The dense index of a node ID.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// The ID at a dense index.
    pub fn id_of(&self, index: usize) -> NodeId {
        self.ids[index]
    }

    /// Neighbor indices of a dense index.
    pub fn neighbors(&self, index: usize) -> &[usize] {
        &self.adj[index]
    }

    /// Neighbor IDs of a node ID.
    pub fn neighbors_of(&self, id: NodeId) -> Vec<NodeId> {
        let i = self.index[&id];
        self.adj[i].iter().map(|&j| self.ids[j]).collect()
    }

    /// Is `(u, v)` an edge?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match (self.index.get(&u), self.index.get(&v)) {
            (Some(&ui), Some(&vi)) => self.adj[ui].contains(&vi),
            _ => false,
        }
    }

    /// Degree of a node by ID.
    pub fn degree_of(&self, id: NodeId) -> usize {
        self.adj[self.index[&id]].len()
    }

    /// The degree of every node.
    pub fn degree_map(&self) -> DegreeMap {
        self.ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, self.adj[i].len()))
            .collect()
    }

    /// The degree sequence in non-increasing order.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// The edge list as ID pairs (each edge once, smaller ID first).
    pub fn edge_list(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edges);
        for (i, nbrs) in self.adj.iter().enumerate() {
            for &j in nbrs {
                if i < j {
                    let (a, b) = (self.ids[i], self.ids[j]);
                    out.push((a.min(b), a.max(b)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Is this graph a tree (connected with exactly n-1 edges)?
    pub fn is_tree(&self) -> bool {
        !self.ids.is_empty() && self.edges == self.ids.len() - 1 && crate::is_connected(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges([1, 2, 3, 4], [(1, 2), (2, 3)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.degree_of(2), 2);
        assert_eq!(g.degree_of(4), 0);
        assert_eq!(g.degree_sequence(), vec![2, 1, 1, 0]);
        assert_eq!(g.edge_list(), vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut g = Graph::new([1, 2]);
        assert!(g.add_edge(1, 1).is_err());
        g.add_edge(1, 2).unwrap();
        assert!(g.add_edge(2, 1).is_err());
        assert!(g.add_edge(1, 9).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate node ID")]
    fn rejects_duplicate_ids() {
        let _ = Graph::new([5, 5]);
    }

    #[test]
    fn tree_detection() {
        let path = Graph::from_edges([1, 2, 3], [(1, 2), (2, 3)]).unwrap();
        assert!(path.is_tree());
        let cycle = Graph::from_edges([1, 2, 3], [(1, 2), (2, 3), (3, 1)]).unwrap();
        assert!(!cycle.is_tree());
        let forest = Graph::from_edges([1, 2, 3, 4], [(1, 2), (3, 4)]).unwrap();
        assert!(!forest.is_tree());
    }

    #[test]
    fn neighbors_by_id() {
        let g = Graph::from_edges([10, 20, 30], [(10, 20), (10, 30)]).unwrap();
        let mut n = g.neighbors_of(10);
        n.sort_unstable();
        assert_eq!(n, vec![20, 30]);
    }
}
