//! Graph substrate for verifying realizations: simple undirected graphs
//! keyed by arbitrary node IDs, BFS-based connectivity and diameter, and
//! Dinic max-flow for exact pairwise edge connectivity (the quantity the
//! connectivity-threshold theorems are stated in, via Menger's theorem).
//!
//! This crate is the *measurement instrument* for the realization
//! algorithms: every distributed construction in the workspace is checked
//! against it — degrees, tree-ness, diameters, connectivity thresholds.

mod bfs;
mod flow;
mod graph;

pub use bfs::{
    bfs_distances, connected_components, diameter, eccentricity, is_connected, tree_diameter,
};
pub use flow::{edge_connectivity, global_edge_connectivity, Dinic};
pub use graph::{DegreeMap, Graph};
