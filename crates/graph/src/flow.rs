//! Dinic max-flow and pairwise edge connectivity.
//!
//! Edge connectivity `Conn_G(u, v)` — the maximum number of edge-disjoint
//! `u`–`v` paths, by Menger's theorem equal to the minimum `u`–`v` edge cut
//! — is computed as max-flow in the graph with every undirected edge
//! modeled as two opposed unit-capacity arcs. This is the exact quantity
//! the connectivity-threshold realizations (Theorems 17/18) must certify:
//! `Conn_G(u, v) ≥ min(ρ(u), ρ(v))`.

use crate::graph::Graph;
use std::collections::VecDeque;

/// A Dinic max-flow solver over a fixed arc structure; capacities reset per
/// query so one instance serves many pairs.
pub struct Dinic {
    /// Arc targets; arcs stored in pairs (arc ^ 1 = reverse arc).
    to: Vec<usize>,
    /// Residual capacities.
    cap: Vec<i64>,
    /// Head of adjacency list per node (indices into `to`).
    head: Vec<Vec<usize>>,
    /// Initial capacities, for resetting between queries.
    cap0: Vec<i64>,
}

impl Dinic {
    /// Builds the flow network for an undirected graph with unit edge
    /// capacities: each edge becomes two opposed arcs of capacity 1
    /// (standard undirected-flow modeling: an edge can carry one unit in
    /// either direction, and the pairing makes residual updates correct).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut d = Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            cap0: Vec::new(),
        };
        for u in 0..n {
            for &v in g.neighbors(u) {
                if u < v {
                    d.add_arc_pair(u, v, 1, 1);
                }
            }
        }
        d
    }

    fn add_arc_pair(&mut self, u: usize, v: usize, cap_uv: i64, cap_vu: i64) {
        self.head[u].push(self.to.len());
        self.to.push(v);
        self.cap.push(cap_uv);
        self.cap0.push(cap_uv);
        self.head[v].push(self.to.len());
        self.to.push(u);
        self.cap.push(cap_vu);
        self.cap0.push(cap_vu);
    }

    /// Maximum `s`–`t` flow. Residual capacities are reset first, so calls
    /// are independent.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert_ne!(s, t, "max_flow endpoints must differ");
        self.cap.copy_from_slice(&self.cap0);
        let n = self.head.len();
        let mut flow = 0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; n];
            level[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &a in &self.head[u] {
                    let v = self.to[a];
                    if self.cap[a] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return flow;
            }
            // DFS blocking flow with iteration pointers.
            let mut iter = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], iter: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.head[u].len() {
            let a = self.head[u][iter[u]];
            let v = self.to[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[a]), level, iter);
                if pushed > 0 {
                    self.cap[a] -= pushed;
                    self.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }
}

/// Exact edge connectivity between two node IDs (0 if either is missing or
/// they are disconnected).
pub fn edge_connectivity(g: &Graph, u: u64, v: u64) -> usize {
    let (Some(ui), Some(vi)) = (g.index_of(u), g.index_of(v)) else {
        return 0;
    };
    if ui == vi {
        return 0;
    }
    Dinic::from_graph(g).max_flow(ui, vi) as usize
}

/// Global edge connectivity: `min_u Conn(v0, u)` over a fixed `v0` (valid
/// because a global min cut separates `v0` from someone).
pub fn global_edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    let mut dinic = Dinic::from_graph(g);
    (1..n).map(|t| dinic.max_flow(0, t) as usize).min().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_has_connectivity_one() {
        let g = Graph::from_edges(1..=4, [(1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(edge_connectivity(&g, 1, 4), 1);
        assert_eq!(global_edge_connectivity(&g), 1);
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let g = Graph::from_edges(1..=4, [(1, 2), (2, 3), (3, 4), (4, 1)]).unwrap();
        assert_eq!(edge_connectivity(&g, 1, 3), 2);
        assert_eq!(global_edge_connectivity(&g), 2);
    }

    #[test]
    fn complete_graph_k5() {
        let mut edges = Vec::new();
        for u in 1..=5u64 {
            for v in (u + 1)..=5 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(1..=5, edges).unwrap();
        for u in 1..=5u64 {
            for v in (u + 1)..=5 {
                assert_eq!(edge_connectivity(&g, u, v), 4);
            }
        }
        assert_eq!(global_edge_connectivity(&g), 4);
    }

    #[test]
    fn disconnected_pairs_have_zero() {
        let g = Graph::from_edges(1..=4, [(1, 2), (3, 4)]).unwrap();
        assert_eq!(edge_connectivity(&g, 1, 3), 0);
        assert_eq!(global_edge_connectivity(&g), 0);
    }

    #[test]
    fn two_triangles_joined_by_a_bridge() {
        let g = Graph::from_edges(
            1..=6,
            [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4), (3, 4)],
        )
        .unwrap();
        assert_eq!(edge_connectivity(&g, 1, 2), 2);
        assert_eq!(edge_connectivity(&g, 1, 6), 1); // through the bridge
        assert_eq!(global_edge_connectivity(&g), 1);
    }

    #[test]
    fn matches_menger_on_star_plus_matching() {
        // Star on 0..=4 plus edges (1,2) and (3,4): Conn(1,2)=2 via the
        // direct edge and via the hub.
        let g = Graph::from_edges(0..=4, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]).unwrap();
        assert_eq!(edge_connectivity(&g, 1, 2), 2);
        assert_eq!(edge_connectivity(&g, 1, 3), 2);
    }
}
