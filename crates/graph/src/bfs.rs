//! BFS-based graph queries: distances, connectivity, eccentricity, exact
//! diameter. Used to verify tree realizations (Theorems 14 and 16 make
//! diameter claims) and overlay connectivity.

use crate::graph::Graph;
use std::collections::VecDeque;

/// BFS distances (in hops) from the node at dense index `src`;
/// `usize::MAX` marks unreachable vertices.
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The connected components as lists of dense indices.
pub fn connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for &v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        components.push(comp);
    }
    components
}

/// Is the graph connected? (The empty graph counts as connected.)
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || connected_components(g).len() == 1
}

/// Eccentricity of the node at dense index `src`: its maximum BFS distance.
/// Returns `None` if the graph is disconnected from `src`.
pub fn eccentricity(g: &Graph, src: usize) -> Option<usize> {
    let dist = bfs_distances(g, src);
    let max = *dist.iter().max()?;
    if max == usize::MAX {
        None
    } else {
        Some(max)
    }
}

/// Exact diameter of a **tree** via double BFS (`O(n)`): the farthest node
/// from an arbitrary root is one end of a diameter path. Returns `None`
/// for empty or disconnected graphs; on a connected non-tree graph the
/// value is only a lower bound.
pub fn tree_diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let first = bfs_distances(g, 0);
    let (far, &d) = first
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .expect("non-empty graph");
    if d == usize::MAX {
        return None;
    }
    eccentricity(g, far)
}

/// Exact diameter via all-pairs BFS (`O(nm)` — fine at verification scale).
/// Returns `None` for disconnected or empty graphs.
pub fn diameter(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for src in 0..n {
        best = best.max(eccentricity(g, src)?);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(1..=n as u64, (1..n as u64).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn distances_on_a_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn components_and_connectivity() {
        let g = Graph::from_edges([1, 2, 3, 4, 5], [(1, 2), (3, 4)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(4)));
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter(&path(6)), Some(5));
        // Star: diameter 2.
        let star = Graph::from_edges(0..=4, (1..=4).map(|i| (0, i))).unwrap();
        assert_eq!(diameter(&star), Some(2));
        // Singleton: diameter 0.
        assert_eq!(diameter(&Graph::new([7])), Some(0));
        // Disconnected: None.
        let g = Graph::from_edges([1, 2, 3], [(1, 2)]).unwrap();
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = path(7);
        assert_eq!(eccentricity(&g, 3), Some(3)); // center
        assert_eq!(eccentricity(&g, 0), Some(6)); // end
    }

    #[test]
    fn tree_diameter_agrees_with_all_pairs_on_trees() {
        for n in 1..=9 {
            let g = path(n);
            assert_eq!(tree_diameter(&g), diameter(&g), "path {n}");
        }
        let star = Graph::from_edges(0..=6, (1..=6).map(|i| (0, i))).unwrap();
        assert_eq!(tree_diameter(&star), Some(2));
        // Caterpillar: spine 1-2-3-4 with a leaf on each spine node.
        let cat = Graph::from_edges(
            1..=8,
            [(1, 2), (2, 3), (3, 4), (1, 5), (2, 6), (3, 7), (4, 8)],
        )
        .unwrap();
        assert_eq!(tree_diameter(&cat), diameter(&cat));
        // Disconnected: None.
        let g = Graph::from_edges([1, 2, 3], [(1, 2)]).unwrap();
        assert_eq!(tree_diameter(&g), None);
    }
}
