//! API-compatible subset of the `rand` crate, implemented locally because
//! the build environment has no access to a crates registry.
//!
//! Only the surface the workspace actually uses is provided: seedable RNGs
//! ([`rngs::StdRng`], [`rngs::SmallRng`]), [`Rng::gen_range`] over integer
//! ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and of ample
//! quality for simulation workloads. Streams differ from upstream `rand`,
//! which is fine: nothing in the workspace depends on upstream's exact
//! sequences, only on determinism under a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled to produce a `T` (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` (Lemire-style rejection via widening
/// multiply; unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// xoshiro256++ state shared by both named RNGs.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Shim stand-in for `rand::rngs::StdRng` (xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Shim stand-in for `rand::rngs::SmallRng` (same generator).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Distinct stream constant so StdRng(seed) != SmallRng(seed).
            SmallRng(Xoshiro256::from_seed(seed ^ 0x5111_9C65_05C0_7A4D))
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(1..=27);
            assert!((1..=27).contains(&x));
            let y: usize = rng.gen_range(0..13);
            assert!(y < 13);
            let z: i64 = rng.gen_range(-1..=1);
            assert!((-1..=1).contains(&z));
        }
    }

    #[test]
    fn range_bounds_are_reachable() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
