//! API-compatible subset of `criterion`, implemented locally because the
//! build environment has no access to a crates registry.
//!
//! Provides the benchmark-group surface the workspace benches use, with
//! plain wall-clock timing (median over samples; no statistics engine).
//! Recognised CLI flags: `--test` (run every benchmark once, as a smoke
//! test — what CI uses), and bare arguments as substring name filters.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier (mirrors `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An ID composed of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An ID that is just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration timer handle (mirrors `criterion::Bencher`).
pub struct Bencher {
    iters: u64,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    elapsed_ns: u128,
}

impl Bencher {
    /// Times `f`, running it `iters` times (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut samples: Vec<u128> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        self.elapsed_ns = samples[samples.len() / 2];
    }
}

/// The harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds a harness from the process CLI arguments.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => filters.push(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filters,
            default_sample_size: 10,
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            harness: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self.default_sample_size;
        self.run_one(&id.0, n, f);
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    fn run_one<F>(&mut self, full_name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(full_name) {
            return;
        }
        let iters = if self.test_mode {
            1
        } else {
            sample_size.max(1) as u64
        };
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {full_name} ... ok");
        } else {
            println!("{full_name}: {} ns/iter (median of {iters})", b.elapsed_ns);
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    harness: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let n = self.sample_size;
        self.harness.run_one(&full, n, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let n = self.sample_size;
        self.harness.run_one(&full, n, |b| f(b));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(64).0, "64");
        assert_eq!(BenchmarkId::new("sort", 64).0, "sort/64");
    }

    #[test]
    fn bencher_times_once_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec![],
            default_sample_size: 10,
        };
        let mut calls = 0;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["yes".into()],
            default_sample_size: 10,
        };
        let mut ran = Vec::new();
        c.bench_function("group_yes", |b| b.iter(|| ran.push("a")));
        c.bench_function("group_no", |b| b.iter(|| ran.push("b")));
        assert_eq!(ran, vec!["a"]);
    }
}
