//! API-compatible subset of `rayon`, implemented locally because the build
//! environment has no access to a crates registry.
//!
//! Provides exactly the worker-pool surface the batched NCC executor uses:
//! [`prelude::ParallelSliceMut::par_chunks_mut`] with `enumerate().for_each()`,
//! [`prelude::IntoParallelIterator::into_par_iter`] over `usize` ranges
//! (with `for_each` and a `map(..).max()` reduction), plus
//! [`current_num_threads`]. Work is distributed over `std::thread` scoped
//! workers with static contiguous partitioning — deterministic in the
//! sense that *which* thread runs a chunk never affects results (the caller
//! gets disjoint `&mut` chunks / disjoint index blocks either way), and
//! allocation-free on the single-chunk fast path.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Number of worker threads the pool will use (mirrors
/// `rayon::current_num_threads`): the machine's available parallelism,
/// cached on first use.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Import surface (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Conversion into a parallel iterator (mirrors the
/// `rayon::iter::IntoParallelIterator` entry point, for `usize` ranges).
pub trait IntoParallelIterator {
    /// The parallel iterator form.
    type Iter;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange(self)
    }
}

/// Pending parallel iteration over a `usize` range.
pub struct ParRange(std::ops::Range<usize>);

impl ParRange {
    /// Runs `f` on every index, distributing contiguous index blocks
    /// across worker threads (inline when the range or the machine offers
    /// no parallelism).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = self.0.len();
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            for i in self.0 {
                f(i);
            }
            return;
        }
        let (start, end) = (self.0.start, self.0.end);
        let per = len.div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            for w in 0..workers {
                let lo = start + w * per;
                let hi = (start + (w + 1) * per).min(end);
                if lo >= hi {
                    break;
                }
                scope.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
            }
        });
    }

    /// Maps every index through `f`; drive the result with a reduction
    /// such as [`ParMap::max`].
    pub fn map<F, T>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap { range: self.0, f }
    }
}

/// Mapped variant of [`ParRange`].
pub struct ParMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Largest mapped value, or `None` on an empty range: per-block maxes
    /// fold on the calling thread (max is commutative, so the block
    /// partitioning can never affect the result).
    pub fn max<T>(self) -> Option<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Ord + Send,
    {
        let len = self.range.len();
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            return self.range.map(&self.f).max();
        }
        let (start, end) = (self.range.start, self.range.end);
        let per = len.div_ceil(workers);
        let f = &self.f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let lo = start + w * per;
                let hi = (start + (w + 1) * per).min(end);
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || (lo..hi).map(f).max()));
            }
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("range worker panicked"))
                .max()
        })
    }
}

/// Parallel chunked iteration over mutable slices (mirrors the
/// `rayon::slice::ParallelSliceMut` entry point).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `chunk_size` elements, to be
    /// processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Pending parallel iteration over chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunks<'a, T> {
        EnumerateChunks(self)
    }

    /// Runs `f` on every chunk, distributing chunks across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumerateChunks<'a, T>(ParChunksMut<'a, T>);

impl<'a, T: Send> EnumerateChunks<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair across worker threads.
    ///
    /// Fast path: a single chunk (or a single worker) runs inline on the
    /// calling thread with no allocation and no thread traffic.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let ParChunksMut { data, chunk_size } = self.0;
        let n_chunks = data.len().div_ceil(chunk_size.max(1)).max(1);
        let workers = current_num_threads().min(n_chunks);
        if workers <= 1 || data.len() <= chunk_size {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Static contiguous partitioning: worker w takes chunks
        // [w*per, (w+1)*per). Simulation rounds step near-uniform work per
        // node, so static partitioning loses little to stealing and keeps
        // the dispatch allocation down to one Vec per call.
        let mut parts: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
        let per = parts.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            while !parts.is_empty() {
                let take = per.min(parts.len());
                let batch: Vec<(usize, &mut [T])> = parts.drain(..take).collect();
                scope.spawn(move || {
                    for (i, chunk) in batch {
                        f((i, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_chunks_visited_exactly_once() {
        let mut v: Vec<usize> = vec![0; 1027];
        v.as_mut_slice()
            .par_chunks_mut(64)
            .enumerate()
            .for_each(|(i, c)| {
                for x in c.iter_mut() {
                    *x += i + 1;
                }
            });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 64 + 1);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let calls = AtomicUsize::new(0);
        let mut v = [1u8, 2, 3];
        v.par_chunks_mut(16).for_each(|c| {
            calls.fetch_add(1, Ordering::Relaxed);
            c[0] = 9;
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(v[0], 9);
    }

    #[test]
    fn threads_reported() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn range_for_each_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1031).map(|_| AtomicUsize::new(0)).collect();
        (0..hits.len()).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_map_max_matches_sequential() {
        let v: Vec<u64> = (0..4099u64).map(|x| (x * 2654435761) % 10007).collect();
        let par = (0..v.len()).into_par_iter().map(|i| v[i]).max();
        assert_eq!(par, v.iter().copied().max());
        assert_eq!((0..0).into_par_iter().map(|i| i).max(), None);
    }
}
