//! API-compatible subset of `parking_lot`, implemented locally because the
//! build environment has no access to a crates registry.
//!
//! Provides [`Mutex`] with the poison-free `lock()` signature, backed by
//! `std::sync::Mutex` (poisoning is swallowed, matching `parking_lot`
//! semantics of not poisoning at all).

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
