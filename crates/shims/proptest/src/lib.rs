//! API-compatible subset of `proptest`, implemented locally because the
//! build environment has no access to a crates registry.
//!
//! The [`proptest!`] macro expands each property into an ordinary `#[test]`
//! that runs `cases` deterministic random cases (seeded from the test's
//! name, so failures reproduce across runs). Shrinking is not implemented —
//! a failing case reports its inputs via the assertion message instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejections are simply skipped.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not fail the test).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Deterministic case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a), so each property has a
    /// stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform sample from an integer range.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    pub trait IntoSizeRange {
        /// Inclusive `(lo, hi)` length bounds.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        VecStrategy { element, lo, hi }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.sample(self.lo..=self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Module alias so `prop::collection::vec` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {case}: {msg}", stringify!($name));
                        }
                    }
                }
                let _ = rejected;
            }
        )*
    };
}

/// Asserts a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}: {}", format!($($fmt)*));
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn fixed_size_vec(mask in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(mask.len(), 7);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x = {}", x);
            prop_assert_ne!(x, 99);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
