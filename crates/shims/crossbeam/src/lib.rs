//! API-compatible subset of `crossbeam`, implemented locally because the
//! build environment has no access to a crates registry.
//!
//! Only [`channel::unbounded`] and the `Sender`/`Receiver` pair are
//! provided (the surface the threaded oracle engine uses), backed by
//! `std::sync::mpsc`, which has the exact MPSC shape the engine needs.

/// Multi-producer single-consumer channels (mirrors `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub use std::sync::mpsc::SendError;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver was dropped.
        ///
        /// # Errors
        ///
        /// Returns the message back inside [`SendError`] on a closed channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half (single consumer).
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails when all senders dropped.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] on a closed-and-drained channel.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// Returns [`mpsc::TryRecvError`] when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }
}
