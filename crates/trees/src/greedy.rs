//! Sequential tree constructions and oracles.
//!
//! * [`greedy_tree`] — the greedy tree `T_G` of \[30\]: sort degrees
//!   non-increasingly; the first node becomes the root with `d_1` children
//!   (the next-highest-degree nodes); every later node fills its remaining
//!   `d_i - 1` child slots with the next unparented nodes in order. `T_G`
//!   has the minimum diameter over all trees realizing `D` (Lemma 15).
//! * [`chain_tree`] — the Algorithm 4 shape: non-leaves form a path, the
//!   leaves fill the remaining degree slots; this maximizes the diameter.
//! * [`min_diameter_brute`] — exhaustive Prüfer-sequence search for small
//!   `n`: the ground truth for Lemma 15 tests.

use dgr_core::havel_hakimi::Realization;
use dgr_core::{DegreeSequence, RealizeError};
use dgr_graph::Graph;

/// Sorts indices by degree non-increasing (ties by index) and returns
/// `(order, sorted_degrees)` where `order[rank] = original index`.
fn sorted_ranks(seq: &DegreeSequence) -> (Vec<usize>, Vec<usize>) {
    let mut order: Vec<usize> = (0..seq.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(seq.degrees()[i]), i));
    let sorted: Vec<usize> = order.iter().map(|&i| seq.degrees()[i]).collect();
    (order, sorted)
}

fn check_tree_input(seq: &DegreeSequence) -> Result<(), RealizeError> {
    if !seq.is_tree_realizable() {
        return Err(RealizeError::NotGraphic);
    }
    Ok(())
}

/// Builds the greedy tree `T_G`. Edges are over the input indices.
///
/// # Errors
///
/// [`RealizeError::NotGraphic`] when `Σd ≠ 2(n-1)` or some degree is 0.
pub fn greedy_tree(seq: &DegreeSequence) -> Result<Realization, RealizeError> {
    check_tree_input(seq)?;
    let n = seq.len();
    if n <= 1 {
        return Ok(Realization { edges: vec![] });
    }
    let (order, d) = sorted_ranks(seq);
    // Child slots per rank: root keeps all d, everyone else spends one
    // edge on its parent.
    let mut edges = Vec::with_capacity(n - 1);
    let mut next_child = 1; // first unparented rank
    for rank in 0..n {
        let slots = if rank == 0 { d[rank] } else { d[rank] - 1 };
        for _ in 0..slots {
            debug_assert!(next_child < n, "ran out of children");
            edges.push((order[rank], order[next_child]));
            next_child += 1;
        }
        if next_child >= n {
            break;
        }
    }
    debug_assert_eq!(edges.len(), n - 1);
    Ok(Realization { edges })
}

/// Builds the Algorithm 4 chain tree: non-leaves chained in sorted order
/// (the chain's end taking the first leaf), remaining leaves hung on the
/// non-leaves by prefix-sum intervals. Maximizes the diameter.
///
/// # Errors
///
/// [`RealizeError::NotGraphic`] when the sequence is not tree-realizable.
pub fn chain_tree(seq: &DegreeSequence) -> Result<Realization, RealizeError> {
    check_tree_input(seq)?;
    let n = seq.len();
    if n <= 1 {
        return Ok(Realization { edges: vec![] });
    }
    let (order, d) = sorted_ranks(seq);
    let k = d.iter().filter(|&&x| x > 1).count().max(1);
    let mut edges = Vec::with_capacity(n - 1);
    // Chain ranks 0..=k (the rank-k node is the first leaf).
    for i in 1..=k {
        edges.push((order[i - 1], order[i]));
    }
    // Hang remaining leaves (ranks k+1..n) on ranks 0..k in order.
    let mut next_leaf = k + 1;
    for rank in 0..k {
        let spent = if rank == 0 { 1 } else { 2 };
        let slots = d[rank] - spent;
        for _ in 0..slots {
            debug_assert!(next_leaf < n, "ran out of leaves");
            edges.push((order[rank], order[next_leaf]));
            next_leaf += 1;
        }
    }
    debug_assert_eq!(edges.len(), n - 1);
    Ok(Realization { edges })
}

/// The diameter of a realization viewed as a graph over `0..n`.
pub fn diameter_of(r: &Realization, n: usize) -> usize {
    let g = Graph::from_edges(
        0..n as u64,
        r.edges.iter().map(|&(u, v)| (u as u64, v as u64)),
    )
    .expect("realization is not simple");
    assert!(g.is_tree(), "realization is not a tree");
    dgr_graph::diameter(&g).expect("tree is connected")
}

/// Exhaustive minimum diameter over *all* labeled trees realizing the
/// degree multiset, via Prüfer sequences. Exponential — `n ≤ 8` only.
///
/// Returns `None` if the sequence is not tree-realizable.
pub fn min_diameter_brute(seq: &DegreeSequence) -> Option<usize> {
    if !seq.is_tree_realizable() {
        return None;
    }
    let n = seq.len();
    if n <= 2 {
        return Some(n - 1);
    }
    assert!(n <= 8, "brute force limited to n <= 8");
    // A labeled tree's Prüfer sequence contains node i exactly d_i - 1
    // times; enumerate sequences consistent with the degree multiset.
    let degrees = seq.degrees();
    let mut best: Option<usize> = None;
    let mut prufer = vec![0usize; n - 2];
    fn rec(
        pos: usize,
        prufer: &mut Vec<usize>,
        remaining: &mut Vec<usize>,
        n: usize,
        best: &mut Option<usize>,
    ) {
        if pos == prufer.len() {
            let edges = prufer_to_tree(prufer, n);
            let g = Graph::from_edges(
                0..n as u64,
                edges.iter().map(|&(u, v)| (u as u64, v as u64)),
            )
            .unwrap();
            let dia = dgr_graph::diameter(&g).unwrap();
            *best = Some(best.map_or(dia, |b| b.min(dia)));
            return;
        }
        for i in 0..n {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                prufer[pos] = i;
                rec(pos + 1, prufer, remaining, n, best);
                remaining[i] += 1;
            }
        }
    }
    let mut remaining: Vec<usize> = degrees.iter().map(|&d| d - 1).collect();
    rec(0, &mut prufer, &mut remaining, n, &mut best);
    best
}

/// Exhaustive *maximum* diameter over all labeled trees realizing the
/// degree multiset (the Section 5 claim for Algorithm 4's chain tree).
/// Exponential — `n ≤ 8` only.
///
/// Returns `None` if the sequence is not tree-realizable.
pub fn max_diameter_brute(seq: &DegreeSequence) -> Option<usize> {
    if !seq.is_tree_realizable() {
        return None;
    }
    let n = seq.len();
    if n <= 2 {
        return Some(n - 1);
    }
    assert!(n <= 8, "brute force limited to n <= 8");
    let degrees = seq.degrees();
    let mut best: Option<usize> = None;
    let mut prufer = vec![0usize; n - 2];
    fn rec(
        pos: usize,
        prufer: &mut Vec<usize>,
        remaining: &mut Vec<usize>,
        n: usize,
        best: &mut Option<usize>,
    ) {
        if pos == prufer.len() {
            let edges = prufer_to_tree(prufer, n);
            let g = Graph::from_edges(
                0..n as u64,
                edges.iter().map(|&(u, v)| (u as u64, v as u64)),
            )
            .unwrap();
            let dia = dgr_graph::diameter(&g).unwrap();
            *best = Some(best.map_or(dia, |b| b.max(dia)));
            return;
        }
        for i in 0..n {
            if remaining[i] > 0 {
                remaining[i] -= 1;
                prufer[pos] = i;
                rec(pos + 1, prufer, remaining, n, best);
                remaining[i] += 1;
            }
        }
    }
    let mut remaining: Vec<usize> = degrees.iter().map(|&d| d - 1).collect();
    rec(0, &mut prufer, &mut remaining, n, &mut best);
    best
}

/// Decodes a Prüfer sequence into tree edges.
fn prufer_to_tree(prufer: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut degree = vec![1usize; n];
    for &p in prufer {
        degree[p] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut used = vec![false; n];
    for &p in prufer {
        let leaf = (0..n).find(|&i| degree[i] == 1 && !used[i]).unwrap();
        edges.push((leaf, p));
        used[leaf] = true;
        degree[p] -= 1;
    }
    let rest: Vec<usize> = (0..n).filter(|&i| !used[i] && degree[i] == 1).collect();
    debug_assert_eq!(rest.len(), 2);
    edges.push((rest[0], rest[1]));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(d: &[usize]) -> DegreeSequence {
        DegreeSequence::new(d.to_vec())
    }

    fn check_tree(seq: &DegreeSequence, r: &Realization) {
        let degrees = r.degrees(seq.len());
        assert_eq!(&degrees, seq.degrees());
        let _ = diameter_of(r, seq.len()); // asserts tree-ness internally
    }

    #[test]
    fn greedy_realizes_known_profiles() {
        for d in [
            vec![1, 1],
            vec![2, 1, 1],
            vec![3, 1, 1, 1],
            vec![2, 2, 1, 1],
            vec![3, 2, 2, 1, 1, 1, 1, 1], // wait: sum must be 2(n-1)=14; 3+2+2+1*5=12 — fixed below
        ]
        .iter()
        .filter(|d| {
            let s = seq(d);
            s.is_tree_realizable()
        }) {
            let s = seq(d);
            check_tree(&s, &greedy_tree(&s).unwrap());
            check_tree(&s, &chain_tree(&s).unwrap());
        }
    }

    #[test]
    fn greedy_diameter_is_minimal_small_n() {
        // Every tree-realizable sequence on n ≤ 7 with degrees ≤ 4.
        fn rec(buf: &mut Vec<usize>, len: usize, f: &mut dyn FnMut(&[usize])) {
            if buf.len() == len {
                f(buf);
                return;
            }
            // Non-increasing to avoid permutations.
            let hi = buf.last().copied().unwrap_or(4);
            for d in 1..=hi {
                buf.push(d);
                rec(buf, len, f);
                buf.pop();
            }
        }
        for n in 3..=7 {
            rec(&mut vec![], n, &mut |d| {
                let s = seq(d);
                if !s.is_tree_realizable() {
                    return;
                }
                let g = greedy_tree(&s).unwrap();
                let got = diameter_of(&g, n);
                let want = min_diameter_brute(&s).unwrap();
                assert_eq!(got, want, "greedy not minimal on {d:?}");
            });
        }
    }

    #[test]
    fn chain_diameter_is_brute_force_maximal_small_n() {
        // The Section 5 claim for Algorithm 4: the chain tree has the
        // *maximum possible* diameter. Exhaustively checked over all
        // tree-realizable non-increasing profiles on n ≤ 7.
        fn rec(buf: &mut Vec<usize>, len: usize, f: &mut dyn FnMut(&[usize])) {
            if buf.len() == len {
                f(buf);
                return;
            }
            let hi = buf.last().copied().unwrap_or(4);
            for d in 1..=hi {
                buf.push(d);
                rec(buf, len, f);
                buf.pop();
            }
        }
        for n in 3..=7 {
            rec(&mut vec![], n, &mut |d| {
                let s = seq(d);
                if !s.is_tree_realizable() {
                    return;
                }
                let c = chain_tree(&s).unwrap();
                let got = diameter_of(&c, n);
                let want = max_diameter_brute(&s).unwrap();
                assert_eq!(got, want, "chain not maximal on {d:?}");
            });
        }
    }

    #[test]
    fn brute_min_and_max_bracket_every_tree() {
        let s = seq(&[3, 3, 2, 1, 1, 1, 1]);
        assert!(s.is_tree_realizable());
        let min = min_diameter_brute(&s).unwrap();
        let max = max_diameter_brute(&s).unwrap();
        assert!(min <= max);
        let g = greedy_tree(&s).unwrap();
        let c = chain_tree(&s).unwrap();
        assert_eq!(diameter_of(&g, 7), min);
        assert_eq!(diameter_of(&c, 7), max);
    }

    #[test]
    fn chain_tree_maximizes_diameter_on_paths() {
        // A pure path profile: chain tree gives diameter n-1.
        let s = seq(&[2, 2, 2, 1, 1]);
        let r = chain_tree(&s).unwrap();
        assert_eq!(diameter_of(&r, 5), 4);
        // Greedy on the same profile is shallower or equal.
        let g = greedy_tree(&s).unwrap();
        assert!(diameter_of(&g, 5) <= 4);
    }

    #[test]
    fn star_profiles() {
        let s = seq(&[4, 1, 1, 1, 1]);
        let r = greedy_tree(&s).unwrap();
        assert_eq!(diameter_of(&r, 5), 2);
        let c = chain_tree(&s).unwrap();
        assert_eq!(diameter_of(&c, 5), 2); // a star is a star either way
    }

    #[test]
    fn rejects_non_tree_sequences() {
        assert!(greedy_tree(&seq(&[2, 2, 2])).is_err()); // cycle
        assert!(greedy_tree(&seq(&[3, 1, 1])).is_err()); // wrong sum
        assert!(chain_tree(&seq(&[1, 1, 1, 1])).is_err()); // forest sum
        assert!(greedy_tree(&seq(&[2, 2, 1, 0, 1])).is_err()); // zero degree
    }

    #[test]
    fn trivial_sizes() {
        assert!(greedy_tree(&seq(&[0])).unwrap().edges.is_empty());
        assert_eq!(greedy_tree(&seq(&[1, 1])).unwrap().edges.len(), 1);
        assert_eq!(min_diameter_brute(&seq(&[1, 1])), Some(1));
    }

    #[test]
    fn prufer_roundtrip() {
        let edges = prufer_to_tree(&[3, 3, 4], 5);
        let g = Graph::from_edges(0..5, edges.iter().map(|&(u, v)| (u as u64, v as u64))).unwrap();
        assert!(g.is_tree());
        assert_eq!(g.degree_of(3), 3);
        assert_eq!(g.degree_of(4), 2);
    }
}
