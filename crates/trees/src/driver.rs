//! Driver: run a distributed tree realization on a simulated network and
//! assemble + verify the resulting tree.
//!
//! Engine note: [`realize_tree_batched`] runs the
//! [`crate::distributed::proto::RealizeTree`] state machine
//! on the **batched executor** — the production path, practical at
//! six-digit `n` (`tests/scale.rs`). [`realize_tree`] runs the
//! direct-style Algorithms 4/5 on the threaded oracle (feature
//! `threaded`, default on) as the differential twin: both engines realize
//! the same tree in the same number of rounds
//! (`crates/trees/tests/batched_trees.rs`).

#[cfg(feature = "threaded")]
use crate::distributed::{alg4, alg5};
use crate::distributed::{proto::RealizeTree, TreeOutcome};
use dgr_core::{verify, Unrealizable};
use dgr_graph::Graph;
use dgr_ncc::{Config, EngineKind, EngineStats, Network, NodeId, RunMetrics, SimError, Sink};
use dgr_primitives::sort::SortBackend;
use std::collections::BTreeMap;

/// Which tree construction to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeAlgo {
    /// Algorithm 4: chain the non-leaves (maximum diameter).
    Chain,
    /// Algorithm 5: the greedy tree `T_G` (minimum diameter).
    Greedy,
}

/// A realized tree overlay with its verification data.
#[derive(Clone, Debug)]
pub struct RealizedTree {
    /// The tree as a graph.
    pub graph: Graph,
    /// Its exact diameter.
    pub diameter: usize,
    /// Requested degree per node.
    pub requested: BTreeMap<NodeId, usize>,
    /// Node IDs in knowledge-path order.
    pub path_order: Vec<NodeId>,
    /// Simulator metrics.
    pub metrics: RunMetrics,
}

/// Outcome of a tree-realization run.
#[derive(Clone, Debug)]
pub enum TreeRealization {
    /// A tree was realized.
    Realized(Box<RealizedTree>),
    /// Every node reported the sequence non-tree-realizable.
    Unrealizable {
        /// Metrics of the refusing run.
        metrics: RunMetrics,
    },
}

impl TreeRealization {
    /// Unwraps the realized tree, panicking otherwise.
    pub fn expect_realized(&self) -> &RealizedTree {
        match self {
            TreeRealization::Realized(t) => t,
            TreeRealization::Unrealizable { .. } => {
                panic!("expected a tree, got UNREALIZABLE")
            }
        }
    }

    /// Did the run (correctly) refuse the sequence?
    pub fn is_unrealizable(&self) -> bool {
        matches!(self, TreeRealization::Unrealizable { .. })
    }
}

/// Shared assembly + verification of a tree-realization run (both engines
/// funnel through here).
fn finish_tree(
    net: &Network,
    by_id: BTreeMap<NodeId, usize>,
    result: dgr_ncc::RunResult<Result<TreeOutcome, Unrealizable>>,
) -> TreeRealization {
    let metrics = result.metrics;
    let failures = result.outputs.iter().filter(|(_, r)| r.is_err()).count();
    if failures > 0 {
        assert_eq!(failures, result.outputs.len(), "inconsistent refusal");
        return TreeRealization::Unrealizable { metrics };
    }
    let assembled = verify::assemble_implicit(
        net.ids_in_path_order(),
        result
            .outputs
            .into_iter()
            .map(|(id, r)| (id, r.unwrap().neighbors)),
    );
    assert_eq!(assembled.duplicate_edges, 0, "tree with duplicate edges");
    let graph = assembled.graph;
    assert!(graph.is_tree(), "realization is not a tree");
    // Double BFS is exact on trees and O(n) — all-pairs BFS would make
    // six-digit realizations driver-bound.
    let diameter = dgr_graph::tree_diameter(&graph).expect("tree is connected");
    TreeRealization::Realized(Box::new(RealizedTree {
        diameter,
        requested: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        metrics,
        graph,
    }))
}

fn degree_assignment(net: &Network, degrees: &[usize]) -> BTreeMap<NodeId, usize> {
    net.assign_in_path_order(degrees)
}

/// A completed tree-realization run: the realization plus the executor's
/// internal statistics (all-zero on the threaded oracle).
#[derive(Clone, Debug)]
pub struct TreeRun {
    /// Realized tree or consistent refusal.
    pub output: TreeRealization,
    /// Executor-internal statistics.
    pub engine: EngineStats,
}

/// The **engine room** of the tree realizations (Algorithms 4 and 5) —
/// one typed entry point over algorithm × engine × sorting backend,
/// driven by the `dgr::Realization` facade builder. `degrees[i]` is
/// assigned to the `i`-th node of the knowledge path.
///
/// [`EngineKind::Threaded`] runs the direct-style oracle twins for the
/// bitonic backend, and the same state machine as the batched executor
/// otherwise; transcripts are identical either way
/// (`crates/trees/tests/batched_trees.rs`). `sink` receives the run's
/// typed [`RunEvent`](dgr_ncc::RunEvent) stream (`None` = unobserved).
///
/// # Errors
///
/// Propagates simulator errors, and
/// [`SimError::EngineUnavailable`] when the threaded oracle is requested
/// without the `threaded` feature.
pub fn realize_tree_run(
    degrees: &[usize],
    config: Config,
    algo: TreeAlgo,
    engine: EngineKind,
    sort: SortBackend,
    sink: Option<&mut dyn Sink>,
) -> Result<TreeRun, SimError> {
    let net = Network::new(degrees.len(), config);
    let by_id = degree_assignment(&net, degrees);
    #[cfg(feature = "threaded")]
    if engine == EngineKind::Threaded && sort == SortBackend::Bitonic {
        let result = net.run_observed(sink, |h| match algo {
            TreeAlgo::Chain => alg4::realize(h, by_id[&h.id()]),
            TreeAlgo::Greedy => alg5::realize(h, by_id[&h.id()]),
        })?;
        let engine_stats = result.engine.clone();
        return Ok(TreeRun {
            output: finish_tree(&net, by_id, result),
            engine: engine_stats,
        });
    }
    let result = net.run_protocol_on(engine, None, sink, |s| {
        RealizeTree::with_sort(by_id[&s.id], algo, sort)
    })?;
    let engine_stats = result.engine.clone();
    Ok(TreeRun {
        output: finish_tree(&net, by_id, result),
        engine: engine_stats,
    })
}

/// Runs the chosen tree realization on a fresh network, with `degrees[i]`
/// assigned to the `i`-th node of the knowledge path (threaded oracle).
///
/// # Errors
///
/// Propagates simulator errors.
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_tree_run` engine room)")]
pub fn realize_tree(
    degrees: &[usize],
    config: Config,
    algo: TreeAlgo,
) -> Result<TreeRealization, SimError> {
    realize_tree_run(
        degrees,
        config,
        algo,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Runs the chosen tree realization on the **batched executor** — the
/// production engine, practical at six-digit `n`.
///
/// # Errors
///
/// Propagates simulator errors.
#[deprecated(note = "use `dgr::Realization` (or the `realize_tree_run` engine room)")]
pub fn realize_tree_batched(
    degrees: &[usize],
    config: Config,
    algo: TreeAlgo,
) -> Result<TreeRealization, SimError> {
    realize_tree_run(
        degrees,
        config,
        algo,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn driver_verifies_degrees() {
        let degrees = vec![2, 2, 1, 1];
        for algo in [TreeAlgo::Chain, TreeAlgo::Greedy] {
            let out = realize_tree(&degrees, Config::ncc0(90), algo).unwrap();
            let t = out.expect_realized();
            verify::degrees_match(&t.graph, &t.requested).unwrap();
        }
    }

    #[test]
    fn single_node_tree() {
        let out = realize_tree(&[0], Config::ncc0(89), TreeAlgo::Greedy).unwrap();
        let t = out.expect_realized();
        assert_eq!(t.diameter, 0);
        assert_eq!(t.graph.edge_count(), 0);
    }
}
