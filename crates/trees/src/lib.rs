//! Tree realization (Section 5 of *Distributed Graph Realizations*): given
//! a degree sequence with `Σd = 2(n-1)` and all degrees positive, construct
//! an overlay *tree* realizing it — either any tree (Algorithm 4, which
//! produces the maximum-diameter caterpillar) or the **minimum-diameter**
//! greedy tree `T_G` of Smith–Székely–Wang \[30\] (Algorithm 5, Lemma 15).
//!
//! * [`greedy`] — the sequential constructions (greedy tree and chain
//!   tree) and a brute-force minimum-diameter oracle for small `n`.
//! * [`distributed::alg4`] — Distributed-Tree-Realization-1: chain the
//!   non-leaves, hang the leaves by prefix-sum intervals; `O(polylog n)`
//!   rounds (Theorem 14).
//! * [`distributed::alg5`] — Distributed-Tree-Realization-2: every node
//!   adopts the next unparented nodes in sorted order; minimum diameter
//!   (Theorem 16), `O(polylog n)` rounds.
//! * [`driver`] — network wiring, assembly and verification; its
//!   non-deprecated entry point [`realize_tree_run`] is the engine room
//!   of the `dgr::Realization` facade builder.

pub mod distributed;
pub mod driver;
pub mod greedy;

#[allow(deprecated)]
#[cfg(feature = "threaded")]
pub use driver::realize_tree;
#[allow(deprecated)]
pub use driver::realize_tree_batched;
pub use driver::{realize_tree_run, TreeAlgo, TreeRealization, TreeRun};
