//! Algorithm 5 (Distributed-Tree-Realization-2), Theorem 16: implicit
//! realization of the **minimum-diameter** tree in `O(polylog n)` rounds.
//!
//! The greedy tree `T_G`: in degree-sorted order, the root (rank 0) adopts
//! the next `d_0` ranks as children; every subsequent rank `i` adopts the
//! next `d_i - 1` unparented ranks. The child intervals are the prefix
//! sums `a_i = 1 + Σ_{j<i}(d_j - [j>0])`, partitioning ranks `1..n` in
//! order. By Lemma 15, `T_G` minimizes the diameter over all realizing
//! trees.
//!
//! Internal nodes are simultaneously parents (they announce to an
//! interval) and children (they are inside someone else's interval), so
//! the interval hand-off runs on the `milestone_scan` primitive
//! ([`dgr_primitives::scatter`]): each parent emits
//! a milestone keyed just before its interval, each rank emits a filler
//! keyed at its position, and the sorted-order scan hands every rank the
//! ID of the parent covering it.

#[cfg(feature = "threaded")]
use super::TreeOutcome;
#[cfg(feature = "threaded")]
use dgr_core::Unrealizable;
#[cfg(feature = "threaded")]
use {
    super::tree_input_check,
    dgr_ncc::NodeHandle,
    dgr_primitives::scatter::{self, ScanRecord},
    dgr_primitives::sort::{self, Order},
    dgr_primitives::{contacts, prefix, PathCtx},
};

/// Runs Algorithm 5 at one node. `degree` is this node's requested tree
/// degree; every node must call simultaneously.
///
/// # Errors
///
/// [`Unrealizable`] when `Σd ≠ 2(n-1)` or some degree is 0.
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, degree: usize) -> Result<TreeOutcome, Unrealizable> {
    let ctx = PathCtx::establish(h);
    realize_on(h, &ctx, degree)
}

/// Algorithm 5 on an established path context.
#[cfg(feature = "threaded")]
pub fn realize_on(
    h: &mut NodeHandle,
    ctx: &PathCtx,
    degree: usize,
) -> Result<TreeOutcome, Unrealizable> {
    tree_input_check(h, ctx, degree)?;
    let n = ctx.vp.len;
    let mut outcome = TreeOutcome {
        requested: degree,
        neighbors: Vec::new(),
    };
    if n == 1 {
        return Ok(outcome);
    }

    let sp = sort::sort_at(
        h,
        &ctx.vp,
        &ctx.contacts,
        ctx.position,
        degree as u64,
        Order::Descending,
    );
    let sct = contacts::build(h, &sp.vp);
    let rank = sp.rank;

    // Child slots: the root keeps all d, everyone else spends one on its
    // parent. (Leaves at rank > 0 have d = 1, hence 0 slots.)
    let slots = degree - usize::from(rank > 0);
    let excl = prefix::prefix_sum_exclusive(h, &sp.vp, &sct, slots as u64) as usize;
    let first_child = 1 + excl; // a_i

    // Milestone just before my interval; filler at my own rank. Keys:
    // milestones odd (2a - 1), fillers even (2r) — totally ordered with
    // every milestone immediately preceding its interval's first filler.
    let rec0 = if slots > 0 {
        ScanRecord::Milestone {
            key: 2 * first_child as u64 - 1,
            addr: h.id(),
        }
    } else {
        ScanRecord::Absent
    };
    let rec1 = ScanRecord::Filler {
        key: 2 * rank as u64,
    };
    let got = scatter::milestone_scan(h, &sp.vp, &sct, rank, [rec0, rec1]);

    if rank > 0 {
        let parent = got[1].expect("non-root rank received no parent");
        outcome.neighbors.push(parent);
    } else {
        debug_assert!(got[1].is_none(), "root scanned a parent");
    }
    Ok(outcome)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver::{realize_tree, TreeAlgo};
    use crate::greedy;
    use dgr_core::DegreeSequence;
    use dgr_ncc::Config;

    #[test]
    fn realizes_min_diameter_trees() {
        for degrees in [
            vec![1, 1],
            vec![2, 1, 1],
            vec![2, 2, 2, 1, 1],
            vec![4, 1, 1, 1, 1],
            vec![3, 3, 1, 1, 1, 1],
            vec![3, 3, 2, 1, 1, 1, 1],
            vec![2, 2, 2, 2, 2, 1, 1], // long path profile
        ] {
            let out = realize_tree(&degrees, Config::ncc0(95), TreeAlgo::Greedy).unwrap();
            let t = out.expect_realized();
            assert!(t.graph.is_tree(), "{degrees:?} not a tree");
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(t.graph.degree_sequence(), want, "{degrees:?}");
            // Theorem 16: the diameter equals the sequential greedy tree's
            // (which Lemma 15 proves minimal).
            let seq = DegreeSequence::new(degrees.clone());
            let reference = greedy::greedy_tree(&seq).unwrap();
            let want_dia = greedy::diameter_of(&reference, degrees.len());
            assert_eq!(t.diameter, want_dia, "{degrees:?}");
            assert!(t.metrics.is_clean());
        }
    }

    #[test]
    fn diameter_is_brute_force_minimal_small_n() {
        for degrees in [
            vec![2, 2, 1, 1],
            vec![3, 2, 1, 1, 1],
            vec![2, 2, 2, 1, 1, 1, 1], // wrong sum -> filtered
            vec![3, 3, 2, 1, 1, 1, 1],
        ] {
            let seq = DegreeSequence::new(degrees.clone());
            if !seq.is_tree_realizable() {
                continue;
            }
            let out = realize_tree(&degrees, Config::ncc0(96), TreeAlgo::Greedy).unwrap();
            let t = out.expect_realized();
            let want = greedy::min_diameter_brute(&seq).unwrap();
            assert_eq!(t.diameter, want, "{degrees:?}");
        }
    }

    #[test]
    fn greedy_never_beaten_by_chain() {
        let degrees = vec![3, 3, 3, 2, 2, 1, 1, 1, 1, 1];
        let g = realize_tree(&degrees, Config::ncc0(97), TreeAlgo::Greedy).unwrap();
        let c = realize_tree(&degrees, Config::ncc0(97), TreeAlgo::Chain).unwrap();
        assert!(g.expect_realized().diameter <= c.expect_realized().diameter);
    }

    #[test]
    fn rejects_non_tree_sequences() {
        let out = realize_tree(&[2, 2, 2], Config::ncc0(98), TreeAlgo::Greedy).unwrap();
        assert!(out.is_unrealizable());
    }
}
