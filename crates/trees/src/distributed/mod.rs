//! Distributed tree realization (Section 5): Algorithms 4 and 5.

pub mod alg4;
pub mod alg5;
pub mod proto;

#[cfg(feature = "threaded")]
use dgr_core::Unrealizable;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use {
    dgr_ncc::NodeHandle,
    dgr_primitives::{ops, PathCtx},
};

/// One node's result of a tree realization: the tree edges stored here
/// (implicit realization — each edge lives at exactly one endpoint).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeOutcome {
    /// The degree this node asked for.
    pub requested: usize,
    /// IDs of neighbors whose tree edge is stored at this node.
    pub neighbors: Vec<NodeId>,
}

/// The shared entry checks of Algorithms 4 and 5 (their "lines 1–3"):
/// establish the path context, verify `Σd = 2(n-1)` and `min d ≥ 1` by
/// aggregation. Every node sees the same aggregates, so the error is
/// globally consistent.
#[cfg(feature = "threaded")]
pub(crate) fn tree_input_check(
    h: &mut NodeHandle,
    ctx: &PathCtx,
    degree: usize,
) -> Result<(), Unrealizable> {
    let n = ctx.vp.len as u64;
    let sum = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, degree as u64, |a, b| a + b);
    let min = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, degree as u64, u64::min);
    if sum != 2 * (n - 1) || (n >= 2 && min < 1) {
        return Err(Unrealizable);
    }
    Ok(())
}
