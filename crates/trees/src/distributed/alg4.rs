//! Algorithm 4 (Distributed-Tree-Realization-1), Theorem 14: implicit
//! tree realization in `O(polylog n)` rounds.
//!
//! Construction (0-based over the degree-sorted ranks, `k` = number of
//! non-leaves, `k_eff = max(k, 1)`):
//!
//! 1. chain ranks `0..=k_eff` (the rank-`k_eff` node is the first leaf,
//!    absorbed by the chain's end);
//! 2. rank `i < k_eff` still owes `slots_i = d_i - 1 - [i>0]` edges; the
//!    remaining leaves (ranks `k_eff+1..n`) are assigned to the non-leaves
//!    in order by the prefix sums of `slots` (the paper's `p_i`);
//! 3. each non-leaf announces its ID to its leaf interval.
//!
//! Step 3's intervals are far from their sources, so the paper routes the
//! announcements with the Theorem 6/7 butterfly machinery. We instead
//! **re-sort once** with keys that interleave each source immediately
//! before its leaf interval (source key `2a_i`, leaf key `2·pos + 1`),
//! after which every group is contiguous with its source at the head and
//! the plain interval multicast applies — same `O~(1)` cost, no butterfly
//! (see `DESIGN.md` §4).

#[cfg(feature = "threaded")]
use super::TreeOutcome;
#[cfg(feature = "threaded")]
use dgr_core::Unrealizable;
#[cfg(feature = "threaded")]
use {
    super::tree_input_check,
    dgr_ncc::NodeHandle,
    dgr_primitives::imcast::{self, CoverSide, Payload},
    dgr_primitives::sort::{self, Order},
    dgr_primitives::{contacts, ops, prefix, PathCtx},
};

/// Runs Algorithm 4 at one node. `degree` is this node's requested tree
/// degree; every node must call simultaneously.
///
/// # Errors
///
/// [`Unrealizable`] when `Σd ≠ 2(n-1)` or some degree is 0.
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, degree: usize) -> Result<TreeOutcome, Unrealizable> {
    let ctx = PathCtx::establish(h);
    realize_on(h, &ctx, degree)
}

/// Algorithm 4 on an established path context.
#[cfg(feature = "threaded")]
pub fn realize_on(
    h: &mut NodeHandle,
    ctx: &PathCtx,
    degree: usize,
) -> Result<TreeOutcome, Unrealizable> {
    tree_input_check(h, ctx, degree)?;
    let n = ctx.vp.len;
    let mut outcome = TreeOutcome {
        requested: degree,
        neighbors: Vec::new(),
    };
    if n == 1 {
        return Ok(outcome);
    }

    // Sort by degree, non-increasing; build contacts on the sorted path.
    let sp = sort::sort_at(
        h,
        &ctx.vp,
        &ctx.contacts,
        ctx.position,
        degree as u64,
        Order::Descending,
    );
    let sct = contacts::build(h, &sp.vp);
    let rank = sp.rank;

    // k = number of non-leaves (degree > 1); k_eff handles the n = 2 path.
    let k = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, u64::from(degree > 1), |a, b| a + b)
        as usize;
    let k_eff = k.max(1);

    // Chain edges (i-1, i) for i in 1..=k_eff, stored at the higher rank.
    if (1..=k_eff).contains(&rank) {
        outcome
            .neighbors
            .push(sp.vp.pred.expect("chained rank without predecessor"));
    }

    // Remaining child slots per non-leaf and their leaf intervals.
    let slots = if rank < k_eff {
        degree - 1 - usize::from(rank > 0)
    } else {
        0
    };
    let excl = prefix::prefix_sum_exclusive(h, &sp.vp, &sct, slots as u64) as usize;
    let interval_start = k_eff + 1 + excl; // first leaf position of mine

    // Re-sort so each source lands immediately before its interval:
    // source key 2·start, leaf key 2·pos + 1.
    let is_source = rank < k_eff;
    let key = if is_source {
        2 * interval_start as u64
    } else {
        2 * rank as u64 + 1
    };
    let msp = sort::sort_at(h, &sp.vp, &sct, rank, key, Order::Ascending);
    let mct = contacts::build(h, &msp.vp);
    let task = (is_source && slots > 0).then(|| {
        (
            CoverSide::After,
            slots,
            Payload {
                addr: h.id(),
                word: 0,
            },
        )
    });
    let got = imcast::interval_multicast(h, &msp.vp, &mct, task);

    if rank > k_eff {
        let payload = got.expect("leaf received no parent announcement");
        outcome.neighbors.push(payload.addr);
    } else {
        debug_assert!(got.is_none(), "non-leaf covered by a leaf interval");
    }
    Ok(outcome)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver::{realize_tree, TreeAlgo};
    use dgr_ncc::Config;

    #[test]
    fn realizes_paths_stars_and_mixed_profiles() {
        for degrees in [
            vec![1, 1],
            vec![2, 1, 1],
            vec![2, 2, 2, 1, 1],       // path of 5
            vec![4, 1, 1, 1, 1],       // star
            vec![3, 3, 1, 1, 1, 1],    // double star
            vec![3, 3, 2, 1, 1, 1, 1], // sum 12 = 2*6 ✓
        ] {
            let out = realize_tree(&degrees, Config::ncc0(91), TreeAlgo::Chain).unwrap();
            let t = out.expect_realized();
            assert!(t.graph.is_tree(), "{degrees:?} not a tree");
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(t.graph.degree_sequence(), want, "{degrees:?}");
            assert!(t.metrics.is_clean());
        }
    }

    #[test]
    fn chain_diameter_matches_sequential_chain_tree() {
        let degrees = vec![3, 3, 3, 2, 2, 1, 1, 1, 1, 1];
        let out = realize_tree(&degrees, Config::ncc0(92), TreeAlgo::Chain).unwrap();
        let t = out.expect_realized();
        let seq = dgr_core::DegreeSequence::new(degrees.clone());
        let reference = crate::greedy::chain_tree(&seq).unwrap();
        let want = crate::greedy::diameter_of(&reference, degrees.len());
        assert_eq!(t.diameter, want);
    }

    #[test]
    fn rejects_non_tree_sequences() {
        for degrees in [
            vec![2, 2, 2],       // cycle sum
            vec![1, 1, 1, 1],    // forest sum
            vec![2, 2, 1, 1, 0], // zero degree
        ] {
            let out = realize_tree(&degrees, Config::ncc0(93), TreeAlgo::Chain).unwrap();
            assert!(out.is_unrealizable(), "{degrees:?} was accepted");
        }
    }
}
