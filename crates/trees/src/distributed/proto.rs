//! Algorithms 4 and 5 as a [`NodeProtocol`] for the batched executor.
//!
//! One state machine covers both constructions: they share the context
//! establishment, the input check (`Σd = 2(n-1)`, `min d ≥ 1`), the
//! degree sort and the slot prefix sums, and differ only in the hand-off
//! that tells every child its parent — Algorithm 4 re-sorts into
//! source-adjacent intervals and interval-multicasts, Algorithm 5 runs
//! the milestone scan. Stage transitions happen within a round exactly
//! where the direct style crosses a primitive boundary, so both engines
//! realize the same tree in the same number of rounds
//! (`crates/trees/tests/batched_trees.rs`).
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol

use super::TreeOutcome;
use crate::driver::TreeAlgo;
use dgr_core::Unrealizable;
use dgr_ncc::{NodeProtocol, RoundCtx, Status};
use dgr_primitives::contacts::ContactTable;
use dgr_primitives::imcast::{CoverSide, Payload};
use dgr_primitives::proto::contacts::ContactsStep;
use dgr_primitives::proto::imcast::ImcastStep;
use dgr_primitives::proto::ops::AggBcastStep;
use dgr_primitives::proto::prefix::PrefixStep;
use dgr_primitives::proto::scatter::ScanStep;
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::step::{AggOp, Poll, Step};
use dgr_primitives::proto::EstablishCtx;
use dgr_primitives::scatter::ScanRecord;
use dgr_primitives::sort::{Order, SortBackend, SortedPath};
use dgr_primitives::PathCtx;
use std::sync::Arc;

enum Stage {
    Establish(EstablishCtx),
    CheckSum(AggBcastStep),
    CheckMin(AggBcastStep),
    Sort(SortStep),
    SortedContacts(ContactsStep),
    /// Algorithm 4 only: k = number of non-leaves.
    NonLeafCount(AggBcastStep),
    Prefix(PrefixStep),
    /// Algorithm 4: the interval re-sort.
    Resort(SortStep),
    ResortContacts(ContactsStep),
    Mcast(ImcastStep),
    /// Algorithm 5: the milestone scan.
    Scan(ScanStep),
}

/// The tree-realization state machine at one node.
pub struct RealizeTree {
    degree: usize,
    algo: TreeAlgo,
    sort: SortBackend,
    stage: Stage,
    ctx: Option<PathCtx>,
    outcome: TreeOutcome,
    sum: u64,
    sp: Option<SortedPath>,
    sct: Option<Arc<ContactTable>>,
    /// Algorithm 4: `k_eff`, remaining child slots, interval start.
    k_eff: usize,
    slots: usize,
    /// Algorithm 5: child slots (root keeps all `d`).
    msp: Option<SortedPath>,
}

impl RealizeTree {
    /// Builds the protocol for one node; `degree` is its requested tree
    /// degree (bitonic Theorem 3 backend).
    pub fn new(degree: usize, algo: TreeAlgo) -> Self {
        Self::with_sort(degree, algo, SortBackend::Bitonic)
    }

    /// Builds the protocol with an explicit backend for the *degree* sort
    /// (Algorithm 4's interval re-sort always runs the bitonic network —
    /// it sorts an already-established path view without a fresh
    /// context).
    pub fn with_sort(degree: usize, algo: TreeAlgo, sort: SortBackend) -> Self {
        RealizeTree {
            degree,
            algo,
            sort,
            stage: Stage::Establish(EstablishCtx::new()),
            ctx: None,
            outcome: TreeOutcome {
                requested: degree,
                neighbors: Vec::new(),
            },
            sum: 0,
            sp: None,
            sct: None,
            k_eff: 0,
            slots: 0,
            msp: None,
        }
    }

    fn ctx(&self) -> &PathCtx {
        self.ctx.as_ref().expect("stage before establish completed")
    }

    fn agg(&self, value: u64, op: AggOp) -> AggBcastStep {
        let ctx = self.ctx();
        AggBcastStep::new(ctx.vp, ctx.tree.clone(), value, op)
    }

    fn done(&mut self) -> Status<Result<TreeOutcome, Unrealizable>> {
        Status::Done(Ok(std::mem::take(&mut self.outcome)))
    }
}

impl NodeProtocol for RealizeTree {
    type Output = Result<TreeOutcome, Unrealizable>;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> Status<Self::Output> {
        loop {
            match &mut self.stage {
                Stage::Establish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(ctx) => {
                        self.ctx = Some(ctx);
                        self.stage = Stage::CheckSum(self.agg(self.degree as u64, AggOp::Sum));
                    }
                },
                Stage::CheckSum(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sum) => {
                        self.sum = sum;
                        self.stage = Stage::CheckMin(self.agg(self.degree as u64, AggOp::Min));
                    }
                },
                Stage::CheckMin(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(min) => {
                        let n = self.ctx().vp.len as u64;
                        if self.sum != 2 * (n - 1) || (n >= 2 && min < 1) {
                            return Status::Done(Err(Unrealizable));
                        }
                        if n == 1 {
                            return self.done();
                        }
                        let ctx = self.ctx();
                        self.stage = Stage::Sort(SortStep::on_ctx(
                            ctx,
                            self.degree as u64,
                            Order::Descending,
                            rctx.id(),
                            self.sort,
                        ));
                    }
                },
                Stage::Sort(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sp) => {
                        self.stage = Stage::SortedContacts(ContactsStep::new(sp.vp));
                        self.sp = Some(sp);
                    }
                },
                Stage::SortedContacts(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(table) => {
                        self.sct = Some(table);
                        match self.algo {
                            TreeAlgo::Chain => {
                                let mine = u64::from(self.degree > 1);
                                self.stage = Stage::NonLeafCount(self.agg(mine, AggOp::Sum));
                            }
                            TreeAlgo::Greedy => {
                                // Child slots: the root keeps all d, everyone
                                // else spends one on its parent.
                                let sp = self.sp.as_ref().unwrap();
                                self.slots = self.degree - usize::from(sp.rank > 0);
                                self.stage = Stage::Prefix(PrefixStep::exclusive(
                                    sp.vp,
                                    self.sct.clone().unwrap(),
                                    self.slots as u64,
                                ));
                            }
                        }
                    }
                },
                Stage::NonLeafCount(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(k) => {
                        // Algorithm 4: chain ranks 1..=k_eff, then count the
                        // remaining child slots of the non-leaves.
                        self.k_eff = (k as usize).max(1);
                        let sp = self.sp.as_ref().unwrap();
                        let rank = sp.rank;
                        if (1..=self.k_eff).contains(&rank) {
                            self.outcome
                                .neighbors
                                .push(sp.vp.pred.expect("chained rank without predecessor"));
                        }
                        self.slots = if rank < self.k_eff {
                            self.degree - 1 - usize::from(rank > 0)
                        } else {
                            0
                        };
                        self.stage = Stage::Prefix(PrefixStep::exclusive(
                            sp.vp,
                            self.sct.clone().unwrap(),
                            self.slots as u64,
                        ));
                    }
                },
                Stage::Prefix(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(excl) => {
                        let sp = self.sp.as_ref().unwrap();
                        let rank = sp.rank;
                        match self.algo {
                            TreeAlgo::Chain => {
                                // Re-sort so each source lands immediately
                                // before its leaf interval.
                                let interval_start = self.k_eff + 1 + excl as usize;
                                let is_source = rank < self.k_eff;
                                let key = if is_source {
                                    2 * interval_start as u64
                                } else {
                                    2 * rank as u64 + 1
                                };
                                self.stage = Stage::Resort(SortStep::new(
                                    sp.vp,
                                    self.sct.clone().unwrap(),
                                    rank,
                                    key,
                                    Order::Ascending,
                                    rctx.id(),
                                ));
                            }
                            TreeAlgo::Greedy => {
                                // Milestone just before my child interval;
                                // filler at my own rank.
                                let first_child = 1 + excl as usize;
                                let rec0 = if self.slots > 0 {
                                    ScanRecord::Milestone {
                                        key: 2 * first_child as u64 - 1,
                                        addr: rctx.id(),
                                    }
                                } else {
                                    ScanRecord::Absent
                                };
                                let rec1 = ScanRecord::Filler {
                                    key: 2 * rank as u64,
                                };
                                self.stage = Stage::Scan(ScanStep::new(
                                    sp.vp,
                                    self.sct.clone().unwrap(),
                                    rank,
                                    [rec0, rec1],
                                    rctx.id(),
                                ));
                            }
                        }
                    }
                },
                Stage::Resort(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(msp) => {
                        self.stage = Stage::ResortContacts(ContactsStep::new(msp.vp));
                        self.msp = Some(msp);
                    }
                },
                Stage::ResortContacts(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(mct) => {
                        let rank = self.sp.as_ref().unwrap().rank;
                        let is_source = rank < self.k_eff;
                        let task = (is_source && self.slots > 0).then(|| {
                            (
                                CoverSide::After,
                                self.slots,
                                Payload {
                                    addr: rctx.id(),
                                    word: 0,
                                },
                            )
                        });
                        let msp = self.msp.as_ref().unwrap();
                        self.stage = Stage::Mcast(ImcastStep::new(msp.vp, mct, task));
                    }
                },
                Stage::Mcast(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(got) => {
                        let rank = self.sp.as_ref().unwrap().rank;
                        if rank > self.k_eff {
                            let payload = got.expect("leaf received no parent announcement");
                            self.outcome.neighbors.push(payload.addr);
                        } else {
                            debug_assert!(got.is_none(), "non-leaf covered by a leaf interval");
                        }
                        return self.done();
                    }
                },
                Stage::Scan(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(got) => {
                        let rank = self.sp.as_ref().unwrap().rank;
                        if rank > 0 {
                            let parent = got[1].expect("non-root rank received no parent");
                            self.outcome.neighbors.push(parent);
                        } else {
                            debug_assert!(got[1].is_none(), "root scanned a parent");
                        }
                        return self.done();
                    }
                },
            }
        }
    }
}
