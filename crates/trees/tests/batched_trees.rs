//! Driver-level differential tests for the batched tree realizations:
//! Algorithms 4 and 5 on the batched executor must realize exactly the
//! tree the threaded drivers realize, in the same number of rounds.

use dgr_ncc::Config;
use dgr_ncc::{EngineKind, SimError};
use dgr_primitives::sort::SortBackend;
use dgr_trees::{realize_tree_run, TreeAlgo, TreeRealization};

// White-box shorthands over the `realize_tree_run` engine room.
fn realize_tree(
    d: &[usize],
    c: dgr_ncc::Config,
    algo: TreeAlgo,
) -> Result<TreeRealization, SimError> {
    realize_tree_run(d, c, algo, EngineKind::Threaded, SortBackend::Bitonic, None)
        .map(|run| run.output)
}
fn realize_tree_batched(
    d: &[usize],
    c: dgr_ncc::Config,
    algo: TreeAlgo,
) -> Result<TreeRealization, SimError> {
    realize_tree_run(d, c, algo, EngineKind::Batched, SortBackend::Bitonic, None)
        .map(|run| run.output)
}
use proptest::prelude::*;

fn assert_trees_agree(threaded: &TreeRealization, batched: &TreeRealization, what: &str) {
    match (threaded, batched) {
        (
            TreeRealization::Unrealizable { metrics: mt },
            TreeRealization::Unrealizable { metrics: mb },
        ) => {
            assert_eq!(mt.rounds, mb.rounds, "{what}: refusal rounds diverge");
        }
        (TreeRealization::Realized(t), TreeRealization::Realized(b)) => {
            assert_eq!(
                t.graph.edge_list(),
                b.graph.edge_list(),
                "{what}: engines realize different trees"
            );
            assert_eq!(t.diameter, b.diameter, "{what}: diameters diverge");
            assert_eq!(t.metrics.rounds, b.metrics.rounds, "{what}: rounds diverge");
            assert_eq!(
                t.metrics.messages, b.metrics.messages,
                "{what}: messages diverge"
            );
        }
        _ => panic!("{what}: drivers disagree about realizability"),
    }
}

#[test]
fn batched_tree_drivers_match_threaded() {
    for degrees in [
        vec![1, 1],
        vec![2, 1, 1],
        vec![2, 2, 2, 1, 1],
        vec![4, 1, 1, 1, 1],
        vec![3, 3, 1, 1, 1, 1],
        vec![3, 3, 2, 1, 1, 1, 1],
        vec![2, 2, 2, 2, 2, 1, 1],
        vec![0],             // single node
        vec![2, 2, 2],       // cycle sum: unrealizable
        vec![1, 1, 1, 1],    // forest sum: unrealizable
        vec![2, 2, 1, 1, 0], // zero degree: unrealizable
    ] {
        for algo in [TreeAlgo::Chain, TreeAlgo::Greedy] {
            let threaded = realize_tree(&degrees, Config::ncc0(91), algo).unwrap();
            let batched = realize_tree_batched(&degrees, Config::ncc0(91), algo).unwrap();
            assert_trees_agree(&threaded, &batched, &format!("{algo:?} {degrees:?}"));
        }
    }
}

#[test]
fn batched_greedy_is_min_diameter() {
    // Theorem 16 holds on the batched engine: the realized diameter equals
    // the sequential greedy tree's (Lemma 15: minimal).
    let degrees = vec![3, 3, 3, 2, 2, 1, 1, 1, 1, 1];
    let out = realize_tree_batched(&degrees, Config::ncc0(92), TreeAlgo::Greedy).unwrap();
    let t = out.expect_realized();
    let seq = dgr_core::DegreeSequence::new(degrees.clone());
    let reference = dgr_trees::greedy::greedy_tree(&seq).unwrap();
    assert_eq!(
        t.diameter,
        dgr_trees::greedy::diameter_of(&reference, degrees.len())
    );
    assert!(t.metrics.is_clean());
}

/// Derives a valid tree degree sequence from random attachment choices:
/// node `i + 1` attaches to `picks[i] % (i + 1)`.
fn tree_degrees(picks: &[usize]) -> Vec<usize> {
    let n = picks.len() + 1;
    let mut degrees = vec![0usize; n];
    for (i, &p) in picks.iter().enumerate() {
        let parent = p % (i + 1);
        degrees[parent] += 1;
        degrees[i + 1] += 1;
    }
    degrees
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random attachment trees: both engines realize the same tree with
    /// the requested degrees, for both algorithms.
    #[test]
    fn tree_sweep_engines_agree(picks in prop::collection::vec(0usize..1000, 2..24), seed in 0u64..1000) {
        let degrees = tree_degrees(&picks);
        for algo in [TreeAlgo::Chain, TreeAlgo::Greedy] {
            let threaded = realize_tree(&degrees, Config::ncc0(seed), algo).unwrap();
            let batched = realize_tree_batched(&degrees, Config::ncc0(seed), algo).unwrap();
            assert_trees_agree(&threaded, &batched, &format!("{algo:?} {degrees:?}"));
            let t = batched.expect_realized();
            prop_assert!(t.graph.is_tree());
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(t.graph.degree_sequence(), want);
        }
    }
}
