//! # Distributed Graph Realizations
//!
//! A Rust implementation of the algorithms from *Distributed Graph
//! Realizations* (Augustine, Choudhary, Cohen, Peleg, Sivasubramaniam,
//! Sourav — IPDPS 2020, arXiv:2002.05376): constructing overlay networks
//! that realize degree sequences, trees, and connectivity thresholds in the
//! node-capacitated clique (NCC) model of distributed computing.
//!
//! This crate is an umbrella façade re-exporting the workspace crates:
//!
//! * [`ncc`] — the NCC0/NCC1 model simulator (rounds, capacities, KT0
//!   knowledge tracking).
//! * [`primitives`] — structural and computational primitives (balanced
//!   binary search trees on a path, distributed sorting, broadcast,
//!   aggregation, multicast).
//! * [`graph`] — the verification substrate (BFS, diameter, Dinic max-flow
//!   edge connectivity).
//! * [`graphgen`] — seeded workload generators (graphic sequences,
//!   power-law, trees, thresholds).
//! * [`realization`] — degree-sequence realization, sequential
//!   (Erdős–Gallai, Havel–Hakimi) and distributed (implicit, explicit,
//!   approximate).
//! * [`trees`] — tree realization (Algorithms 4 and 5, minimum diameter).
//! * [`connectivity`] — connectivity-threshold realization (NCC1 `O~(1)`
//!   and NCC0 `O~(Δ)` 2-approximations).
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the reproduction of every paper claim.

pub use dgr_connectivity as connectivity;
pub use dgr_core as realization;
pub use dgr_graph as graph;
pub use dgr_graphgen as graphgen;
pub use dgr_ncc as ncc;
pub use dgr_primitives as primitives;
pub use dgr_trees as trees;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use dgr_connectivity::{ThresholdInstance, ThresholdRealization};
    pub use dgr_core::{DegreeSequence, DistributedRealization, Realization, RealizeError};
    pub use dgr_graph::Graph;
    pub use dgr_ncc::{CapacityPolicy, Config, Model, Network, NodeId, RunMetrics};
    pub use dgr_trees::TreeRealization;
}
