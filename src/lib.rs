//! # Distributed Graph Realizations
//!
//! A Rust implementation of the algorithms from *Distributed Graph
//! Realizations* (Augustine, Choudhary, Cohen, Peleg, Sivasubramaniam,
//! Sourav — IPDPS 2020, arXiv:2002.05376): constructing overlay networks
//! that realize degree sequences, trees, and connectivity thresholds in the
//! node-capacitated clique (NCC) model of distributed computing.
//!
//! # The `Realization` builder
//!
//! Every realization — degree sequences (implicit, explicit, upper
//! envelope), trees (Algorithms 4 and 5), and connectivity thresholds
//! (NCC1 star, Algorithm 6, and the composed paper-exact Algorithm 6) —
//! runs through one typed entry point:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{Realization, Workload};
//!
//! let out = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! let overlay = out.degrees().expect_realized();
//! assert_eq!(overlay.graph.edge_count(), 3);
//! assert!(out.metrics().is_clean());
//! ```
//!
//! Every capability is a builder knob instead of a separate entry point:
//! the executor ([`Engine::Batched`] production engine vs the
//! [`Engine::Threaded`] oracle), the capacity policy, masked sub-network
//! runs, the Theorem 3 sorting backend ([`SortBackend::Bitonic`] vs the
//! randomized [`SortBackend::RandomizedLogN`]), KT0 knowledge tracking,
//! and the certification depth:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{CapacityPolicy, Engine, Kt0, Realization, SortBackend, Workload};
//!
//! // An explicit realization on the batched executor, queueing policy
//! // (required by the staggered hand-off), KT0 tracking on.
//! let out = Realization::new(Workload::Explicit(vec![3, 2, 2, 2, 2, 2, 2, 1]))
//!     .engine(Engine::Batched)
//!     .policy(CapacityPolicy::Queue)
//!     .sort(SortBackend::Bitonic)
//!     .tracking(Kt0::Tracked)
//!     .seed(2026)
//!     .run()
//!     .unwrap();
//! let overlay = out.degrees().expect_realized();
//! assert_eq!(overlay.graph.edge_count(), 8);
//!
//! // A masked sub-network run: only the first three path positions
//! // participate (the engine-level form of Algorithm 6's recursion).
//! let masked = Realization::new(Workload::Envelope(vec![2, 1, 1, 0, 0]))
//!     .mask(vec![true, true, true, false, false])
//!     .seed(5)
//!     .run()
//!     .unwrap();
//! assert_eq!(masked.degrees().expect_realized().path_order.len(), 3);
//! ```
//!
//! The composed paper-exact Algorithm 6 ([`Workload::Ncc0Exact`]) and the
//! other threshold constructions return a certified
//! [`ThresholdRealization`]:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{Realization, Workload};
//!
//! let out = Realization::new(Workload::Ncc0Exact(vec![2, 2, 1, 1, 1]))
//!     .seed(55)
//!     .run()
//!     .unwrap();
//! assert!(out.threshold().report.satisfied);
//! ```
//!
//! The workspace crates remain available underneath for white-box use:
//!
//! * [`ncc`] — the NCC0/NCC1 model simulator (rounds, capacities, KT0
//!   knowledge tracking).
//! * [`primitives`] — structural and computational primitives (balanced
//!   binary search trees on a path, distributed sorting, broadcast,
//!   aggregation, multicast).
//! * [`graph`] — the verification substrate (BFS, diameter, Dinic max-flow
//!   edge connectivity).
//! * [`graphgen`] — seeded workload generators (graphic sequences,
//!   power-law, trees, thresholds).
//! * [`realization`] — degree-sequence realization, sequential
//!   (Erdős–Gallai, Havel–Hakimi) and distributed (implicit, explicit,
//!   approximate).
//! * [`trees`] — tree realization (Algorithms 4 and 5, minimum diameter).
//! * [`connectivity`] — connectivity-threshold realization (NCC1 `O~(1)`
//!   and NCC0 `O~(Δ)` 2-approximations, plus the composed paper-exact
//!   Algorithm 6).
//!
//! See `README.md` for a guided tour and `ARCHITECTURE.md` for the system
//! design (including the builder's full knob matrix and the migration
//! table from the deprecated `realize_*` entry points).

#![cfg_attr(not(test), deny(deprecated))]

pub use dgr_connectivity as connectivity;
pub use dgr_core as realization;
pub use dgr_graph as graph;
pub use dgr_graphgen as graphgen;
pub use dgr_ncc as ncc;
pub use dgr_primitives as primitives;
pub use dgr_trees as trees;

use dgr_connectivity::{ThresholdAlgo, ThresholdInstance, ThresholdRealization};
use dgr_core::distributed::proto::Flavor;
use dgr_core::DriverOutput;
use dgr_ncc::{Config, EngineStats, Model, RunMetrics, SimError};
use dgr_primitives::sort::SortBackend as PrimitivesSortBackend;
use dgr_trees::{TreeAlgo, TreeRealization};

pub use dgr_ncc::EngineKind as Engine;
pub use dgr_ncc::{CapacityPolicy, NodeId};
pub use dgr_primitives::sort::SortBackend;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use crate::{Engine, Kt0, Realization, Realized, RunOutput, SortBackend, Workload};
    pub use dgr_connectivity::{ThresholdInstance, ThresholdRealization};
    pub use dgr_core::{DegreeSequence, DistributedRealization, DriverOutput, RealizeError};
    pub use dgr_graph::Graph;
    pub use dgr_ncc::{CapacityPolicy, Config, Model, Network, NodeId, RunMetrics};
    pub use dgr_trees::{TreeAlgo, TreeRealization};
}

/// What to realize. Degree workloads take one requested degree per
/// knowledge-path position; threshold workloads take one requirement
/// `ρ ≥ 1` per position.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Algorithm 3: implicit degree realization, exact (Theorem 11).
    Implicit(Vec<usize>),
    /// Theorem 13: the upper-envelope realization (implicit, multigraph
    /// semantics; accepts non-graphic sequences).
    Envelope(Vec<usize>),
    /// Theorem 12: explicit degree realization (both endpoints know every
    /// edge; runs under the queueing policy by default).
    Explicit(Vec<usize>),
    /// Algorithms 4/5: tree realization with the chosen construction.
    Tree {
        /// Requested tree degrees (`Σd = 2(n-1)`, all positive).
        degrees: Vec<usize>,
        /// Chain (Algorithm 4) or minimum-diameter greedy (Algorithm 5).
        algo: TreeAlgo,
    },
    /// Theorem 17: the NCC1 star threshold construction (`O~(1)` rounds;
    /// automatically runs under an NCC1 configuration).
    Ncc1(Vec<usize>),
    /// Algorithm 6 / Theorem 18 with the default cyclic-pipeline phase 1.
    Ncc0Threshold(Vec<usize>),
    /// Algorithm 6 **paper-exact**, composed end to end: phase 1 via the
    /// prefix envelope recursion, the distinctness patch, the phase-2
    /// pipeline, and the explicitness acknowledgements
    /// ([`connectivity::distributed::ncc0_exact`]).
    Ncc0Exact(Vec<usize>),
    /// Algorithm 6 phase 1 in isolation: the Theorem 13 envelope run on
    /// the ρ-sorted prefix sub-network (driver-assigned order).
    PrefixEnvelope(Vec<usize>),
}

/// KT0 knowledge-tracking switch: when tracked, the engine verifies that
/// every send addresses an ID the sender has legitimately learned — a
/// machine-checked proof of NCC0 legality. Ignored under NCC1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kt0 {
    /// Track knowledge and flag violations (the NCC0 default).
    Tracked,
    /// Skip tracking (cheaper; use for throughput measurements).
    Untracked,
}

/// A rejected [`Realization`] request (before any simulation ran), or a
/// simulator error from the run itself.
#[derive(Debug)]
pub enum RealizationError {
    /// The knob combination is invalid; the message says why.
    InvalidRequest(String),
    /// The simulation failed (model violation, round limit, panic).
    Sim(SimError),
}

impl std::fmt::Display for RealizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealizationError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            RealizationError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RealizationError {}

impl From<SimError> for RealizationError {
    fn from(e: SimError) -> Self {
        RealizationError::Sim(e)
    }
}

/// The realized output, by workload family.
///
/// The accessors on [`Realized`] panic with the *family name* on a
/// mismatch (never the full realization — at six-digit `n` that debug
/// dump would be enormous).
#[derive(Clone, Debug)]
pub enum RunOutput {
    /// Degree workloads (implicit/envelope/explicit/masked/prefix).
    Degrees(DriverOutput),
    /// Tree workloads.
    Tree(TreeRealization),
    /// Threshold workloads (boxed: the certification report and neighbor
    /// maps dominate the enum's footprint).
    Threshold(Box<ThresholdRealization>),
}

impl RunOutput {
    /// The family name (for error messages).
    fn family(&self) -> &'static str {
        match self {
            RunOutput::Degrees(_) => "a degree realization",
            RunOutput::Tree(_) => "a tree realization",
            RunOutput::Threshold(_) => "a threshold realization",
        }
    }
}

/// A completed [`Realization`] run: the workload-family output plus the
/// executor's internal statistics.
#[derive(Clone, Debug)]
pub struct Realized {
    /// The realized output.
    pub output: RunOutput,
    /// Executor-internal statistics (compactions, routing-path choices;
    /// all-zero on the threaded oracle).
    pub engine_stats: EngineStats,
}

impl Realized {
    /// The degree-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a degree realization.
    pub fn degrees(&self) -> &DriverOutput {
        match &self.output {
            RunOutput::Degrees(d) => d,
            other => panic!("expected a degree realization, got {}", other.family()),
        }
    }

    /// The tree-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a tree realization.
    pub fn tree(&self) -> &TreeRealization {
        match &self.output {
            RunOutput::Tree(t) => t,
            other => panic!("expected a tree realization, got {}", other.family()),
        }
    }

    /// The threshold-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a threshold realization.
    pub fn threshold(&self) -> &ThresholdRealization {
        match &self.output {
            RunOutput::Threshold(t) => t,
            other => panic!("expected a threshold realization, got {}", other.family()),
        }
    }

    /// The run metrics, whichever family the workload belongs to.
    pub fn metrics(&self) -> &RunMetrics {
        match &self.output {
            RunOutput::Degrees(d) => d.metrics(),
            RunOutput::Tree(TreeRealization::Realized(t)) => &t.metrics,
            RunOutput::Tree(TreeRealization::Unrealizable { metrics }) => metrics,
            RunOutput::Threshold(t) => &t.metrics,
        }
    }
}

/// The builder facade over the whole driver stack: workload × engine ×
/// capacity policy × mask × sorting backend × tracking × certification,
/// one knob each. See the crate docs for examples and `ARCHITECTURE.md`
/// for the full knob matrix.
#[derive(Clone, Debug)]
pub struct Realization {
    workload: Workload,
    engine: Engine,
    policy: Option<CapacityPolicy>,
    mask: Option<Vec<bool>>,
    sort: SortBackend,
    tracking: Option<Kt0>,
    seed: u64,
    model: Option<Model>,
    capacity_factor: Option<f64>,
    sequential_ids: bool,
    workers: Option<usize>,
    max_rounds: Option<u64>,
    certify: bool,
}

impl Realization {
    /// Starts a request for the given workload. Defaults: batched
    /// engine, seed 0, bitonic sort, tracking on under NCC0, the
    /// workload's natural capacity policy (queueing for the explicit and
    /// NCC0-threshold constructions, strict otherwise), certification on.
    pub fn new(workload: Workload) -> Self {
        Realization {
            workload,
            engine: Engine::Batched,
            policy: None,
            mask: None,
            sort: SortBackend::Bitonic,
            tracking: None,
            seed: 0,
            model: None,
            capacity_factor: None,
            sequential_ids: false,
            workers: None,
            max_rounds: None,
            certify: true,
        }
    }

    /// Selects the executor (default: [`Engine::Batched`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the capacity policy (default: the workload's natural
    /// policy — queueing where staggered hand-offs need receive-side
    /// queueing, strict otherwise).
    pub fn policy(mut self, policy: CapacityPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Restricts the run to a sub-network: only masked-in path positions
    /// participate (degree workloads only; the knowledge path links
    /// across the rest).
    pub fn mask(mut self, participants: Vec<bool>) -> Self {
        self.mask = Some(participants);
        self
    }

    /// Selects the Theorem 3 sorting backend (default: bitonic). The
    /// randomized backend requires a queueing or recording policy.
    pub fn sort(mut self, sort: SortBackend) -> Self {
        self.sort = sort;
        self
    }

    /// Switches KT0 knowledge tracking (default: tracked under NCC0).
    pub fn tracking(mut self, tracking: Kt0) -> Self {
        self.tracking = Some(tracking);
        self
    }

    /// Sets the master seed (IDs, path order, node RNGs, stagger
    /// schedules). Identical requests with identical seeds replay
    /// identically, on either engine and any worker count.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the model variant (default: NCC1 for the
    /// [`Workload::Ncc1`] star, NCC0 otherwise). Per the paper's remark,
    /// every NCC0 algorithm runs unchanged under NCC1.
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Overrides the capacity multiplier `c` in `cap = c·log₂ n`.
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = Some(factor);
        self
    }

    /// Uses sequential IDs `1..=n` (figure-exact runs; the honest
    /// random-ID setting is the default).
    pub fn sequential_ids(mut self) -> Self {
        self.sequential_ids = true;
        self
    }

    /// Pins the batched executor's worker count (`0`/default = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Overrides the round-limit safety valve.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Switches the threshold workloads' max-flow certification (an
    /// `O(n)`-flows cost; switch off at six-digit `n` and verify
    /// structurally — the returned report is then marked `skipped` and
    /// `report.certified()` stays false). Ignored by non-threshold
    /// workloads.
    pub fn certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// The workload's input length.
    fn input_len(&self) -> usize {
        match &self.workload {
            Workload::Implicit(d) | Workload::Envelope(d) | Workload::Explicit(d) => d.len(),
            Workload::Tree { degrees, .. } => degrees.len(),
            Workload::Ncc1(r)
            | Workload::Ncc0Threshold(r)
            | Workload::Ncc0Exact(r)
            | Workload::PrefixEnvelope(r) => r.len(),
        }
    }

    /// The workload's natural capacity policy.
    fn default_policy(&self) -> CapacityPolicy {
        match &self.workload {
            Workload::Explicit(_) | Workload::Ncc0Threshold(_) | Workload::Ncc0Exact(_) => {
                CapacityPolicy::Queue
            }
            _ => CapacityPolicy::Strict,
        }
    }

    /// Builds the simulator configuration from the knobs.
    fn config(&self) -> Result<Config, RealizationError> {
        let default_model = match &self.workload {
            Workload::Ncc1(_) => Model::Ncc1,
            _ => Model::Ncc0,
        };
        let model = self.model.unwrap_or(default_model);
        if matches!(self.workload, Workload::Ncc1(_)) && model == Model::Ncc0 {
            return Err(RealizationError::InvalidRequest(
                "the Theorem 17 star construction needs the NCC1 model \
                 (all IDs common knowledge)"
                    .into(),
            ));
        }
        let mut config = match model {
            Model::Ncc1 => Config::ncc1(self.seed),
            Model::Ncc0 => Config::ncc0(self.seed),
        };
        config.capacity_policy = self.policy.unwrap_or_else(|| self.default_policy());
        if let Some(tracking) = self.tracking {
            config.track_knowledge = tracking == Kt0::Tracked && config.model == Model::Ncc0;
        }
        if let Some(factor) = self.capacity_factor {
            config.capacity_factor = factor;
        }
        if self.sequential_ids {
            config = config.with_sequential_ids();
        }
        if let Some(workers) = self.workers {
            config.worker_threads = workers;
        }
        if let Some(max_rounds) = self.max_rounds {
            config.max_rounds = max_rounds;
        }
        if matches!(self.sort, SortBackend::RandomizedLogN { .. })
            && config.capacity_policy == CapacityPolicy::Strict
        {
            return Err(RealizationError::InvalidRequest(
                "the randomized sort backend needs a queueing (or recording) capacity \
                 policy for its scatter fan-in — add .policy(CapacityPolicy::Queue)"
                    .into(),
            ));
        }
        Ok(config)
    }

    /// Validates the knob combination and runs the realization.
    ///
    /// # Errors
    ///
    /// [`RealizationError::InvalidRequest`] for contradictory knobs
    /// (mask on a non-degree workload, mask length mismatch, randomized
    /// sort under the strict policy), [`RealizationError::Sim`] for
    /// simulator failures.
    ///
    /// # Panics
    ///
    /// Panics if a threshold workload's requirements are invalid
    /// (`ρ = 0` or `ρ ≥ n` — no simple graph can satisfy them).
    pub fn run(self) -> Result<Realized, RealizationError> {
        if self.input_len() == 0 {
            return Err(RealizationError::InvalidRequest(
                "the workload needs at least one node".into(),
            ));
        }
        if let Some(mask) = &self.mask {
            let degree_workload = matches!(
                self.workload,
                Workload::Implicit(_) | Workload::Envelope(_) | Workload::Explicit(_)
            );
            if !degree_workload {
                return Err(RealizationError::InvalidRequest(
                    "masks apply to degree workloads only (trees and thresholds \
                     realize over the whole network)"
                        .into(),
                ));
            }
            if mask.len() != self.input_len() {
                return Err(RealizationError::InvalidRequest(format!(
                    "mask length {} does not match the {}-node workload",
                    mask.len(),
                    self.input_len()
                )));
            }
        }
        let config = self.config()?;
        let sort: PrimitivesSortBackend = self.sort;
        let mask = self.mask.as_deref();
        let (output, engine_stats) = match &self.workload {
            Workload::Implicit(d) | Workload::Envelope(d) | Workload::Explicit(d) => {
                let flavor = match &self.workload {
                    Workload::Implicit(_) => Flavor::Implicit,
                    Workload::Envelope(_) => Flavor::Envelope,
                    _ => Flavor::Explicit,
                };
                let run = dgr_core::realize_degrees(d, mask, config, flavor, self.engine, sort)?;
                (RunOutput::Degrees(run.output), run.engine)
            }
            Workload::Tree { degrees, algo } => {
                let run = dgr_trees::realize_tree_run(degrees, config, *algo, self.engine, sort)?;
                (RunOutput::Tree(run.output), run.engine)
            }
            Workload::Ncc1(r) | Workload::Ncc0Threshold(r) | Workload::Ncc0Exact(r) => {
                let algo = match &self.workload {
                    Workload::Ncc1(_) => ThresholdAlgo::Ncc1Star,
                    Workload::Ncc0Threshold(_) => ThresholdAlgo::Ncc0Pipeline,
                    _ => ThresholdAlgo::Ncc0Exact,
                };
                let inst = ThresholdInstance::new(r.clone());
                let run = dgr_connectivity::realize_threshold_run(
                    &inst,
                    config,
                    algo,
                    self.engine,
                    sort,
                    self.certify,
                )?;
                (RunOutput::Threshold(Box::new(run.output)), run.engine)
            }
            Workload::PrefixEnvelope(r) => {
                let inst = ThresholdInstance::new(r.clone());
                let run =
                    dgr_connectivity::realize_prefix_envelope_run(&inst, config, self.engine)?;
                (RunOutput::Degrees(run.output), run.engine)
            }
        };
        Ok(Realized {
            output,
            engine_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_contradictory_knobs() {
        // Mask on a tree workload.
        let err = Realization::new(Workload::Tree {
            degrees: vec![1, 2, 1],
            algo: TreeAlgo::Greedy,
        })
        .mask(vec![true, true, false])
        .run()
        .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)), "{err}");

        // Mask length mismatch.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .mask(vec![true])
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("mask length"), "{err}");

        // Randomized sort under the strict policy.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .sort(SortBackend::RandomizedLogN { seed: 1 })
            .policy(CapacityPolicy::Strict)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("randomized sort"), "{err}");

        // Empty workload.
        let err = Realization::new(Workload::Implicit(vec![]))
            .run()
            .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)));
    }

    #[test]
    fn builder_covers_every_workload() {
        let out = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
            .seed(41)
            .run()
            .unwrap();
        assert_eq!(out.degrees().expect_realized().graph.edge_count(), 3);

        let out = Realization::new(Workload::Envelope(vec![3, 3, 1, 0]))
            .seed(5)
            .run()
            .unwrap();
        assert!(!out.degrees().is_unrealizable());

        let out = Realization::new(Workload::Explicit(vec![1, 1, 2, 2]))
            .seed(9)
            .run()
            .unwrap();
        assert!(!out
            .degrees()
            .expect_realized()
            .explicit_neighbors
            .is_empty());

        let out = Realization::new(Workload::Tree {
            degrees: vec![2, 2, 1, 1],
            algo: TreeAlgo::Greedy,
        })
        .seed(90)
        .run()
        .unwrap();
        assert!(out.tree().expect_realized().graph.is_tree());

        let out = Realization::new(Workload::Ncc1(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::Ncc0Threshold(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::Ncc0Exact(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::PrefixEnvelope(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(!out.degrees().is_unrealizable());
    }

    #[test]
    fn certification_can_be_skipped() {
        let out = Realization::new(Workload::Ncc1(vec![2, 1, 1, 1]))
            .certify(false)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(out.threshold().report.pairs_checked, 0);
        assert!(out.threshold().report.skipped);
        assert!(!out.threshold().report.certified());
    }

    #[test]
    fn engines_agree_through_the_builder() {
        let run = |engine: Engine| {
            Realization::new(Workload::Implicit(vec![3, 2, 2, 2, 1, 1, 1]))
                .engine(engine)
                .seed(17)
                .run()
                .unwrap()
        };
        let batched = run(Engine::Batched);
        let threaded = run(Engine::Threaded);
        assert_eq!(batched.metrics().rounds, threaded.metrics().rounds);
        assert_eq!(batched.metrics().messages, threaded.metrics().messages);
        assert_eq!(
            batched.degrees().expect_realized().graph.edge_list(),
            threaded.degrees().expect_realized().graph.edge_list()
        );
    }
}
