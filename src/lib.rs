//! # Distributed Graph Realizations
//!
//! A Rust implementation of the algorithms from *Distributed Graph
//! Realizations* (Augustine, Choudhary, Cohen, Peleg, Sivasubramaniam,
//! Sourav — IPDPS 2020, arXiv:2002.05376): constructing overlay networks
//! that realize degree sequences, trees, and connectivity thresholds in the
//! node-capacitated clique (NCC) model of distributed computing.
//!
//! # The `Realization` builder
//!
//! Every realization — degree sequences (implicit, explicit, upper
//! envelope), trees (Algorithms 4 and 5), and connectivity thresholds
//! (NCC1 star, Algorithm 6, and the composed paper-exact Algorithm 6) —
//! runs through one typed entry point:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{Realization, Workload};
//!
//! let out = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! let overlay = out.degrees().expect_realized();
//! assert_eq!(overlay.graph.edge_count(), 3);
//! assert!(out.metrics().is_clean());
//! ```
//!
//! Every capability is a builder knob instead of a separate entry point:
//! the executor ([`Engine::Batched`] production engine vs the
//! [`Engine::Threaded`] oracle), the capacity policy, masked sub-network
//! runs, the Theorem 3 sorting backend ([`SortBackend::Bitonic`] vs the
//! randomized [`SortBackend::RandomizedLogN`]), KT0 knowledge tracking,
//! and the certification depth:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{CapacityPolicy, Engine, Kt0, Realization, SortBackend, Workload};
//!
//! // An explicit realization on the batched executor, queueing policy
//! // (required by the staggered hand-off), KT0 tracking on.
//! let out = Realization::new(Workload::Explicit(vec![3, 2, 2, 2, 2, 2, 2, 1]))
//!     .engine(Engine::Batched)
//!     .policy(CapacityPolicy::Queue)
//!     .sort(SortBackend::Bitonic)
//!     .tracking(Kt0::Tracked)
//!     .seed(2026)
//!     .run()
//!     .unwrap();
//! let overlay = out.degrees().expect_realized();
//! assert_eq!(overlay.graph.edge_count(), 8);
//!
//! // A masked sub-network run: only the first three path positions
//! // participate (the engine-level form of Algorithm 6's recursion).
//! let masked = Realization::new(Workload::Envelope(vec![2, 1, 1, 0, 0]))
//!     .mask(vec![true, true, true, false, false])
//!     .seed(5)
//!     .run()
//!     .unwrap();
//! assert_eq!(masked.degrees().expect_realized().path_order.len(), 3);
//! ```
//!
//! The composed paper-exact Algorithm 6 ([`Workload::Ncc0Exact`]) and the
//! other threshold constructions return a certified
//! [`ThresholdRealization`]:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{Realization, Workload};
//!
//! let out = Realization::new(Workload::Ncc0Exact(vec![2, 2, 1, 1, 1]))
//!     .seed(55)
//!     .run()
//!     .unwrap();
//! assert!(out.threshold().report.satisfied);
//! ```
//!
//! # Watching runs live
//!
//! Every run narrates itself as a typed [`RunEvent`] stream.
//! [`Realization::observe`] attaches a [`Sink`] to the one-shot path;
//! [`Realization::run_streaming`] turns the run into a pull-based
//! [`RunSession`] whose `next_round()` steps the engine one round at a
//! time — six-digit runs become inspectable mid-flight:
//!
//! ```
//! use distributed_graph_realizations as dgr;
//! use dgr::{Realization, Workload};
//!
//! let mut session = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
//!     .seed(7)
//!     .run_streaming()
//!     .unwrap();
//! let mut rounds = 0;
//! while let Some(snapshot) = session.next_round() {
//!     assert_eq!(snapshot.round, rounds);
//!     rounds += 1;
//! }
//! let out = session.finish().unwrap();
//! assert_eq!(rounds, out.metrics().rounds);
//! ```
//!
//! The workspace crates remain available underneath for white-box use:
//!
//! * [`ncc`] — the NCC0/NCC1 model simulator (rounds, capacities, KT0
//!   knowledge tracking).
//! * [`primitives`] — structural and computational primitives (balanced
//!   binary search trees on a path, distributed sorting, broadcast,
//!   aggregation, multicast).
//! * [`graph`] — the verification substrate (BFS, diameter, Dinic max-flow
//!   edge connectivity).
//! * [`graphgen`] — seeded workload generators (graphic sequences,
//!   power-law, trees, thresholds).
//! * [`realization`] — degree-sequence realization, sequential
//!   (Erdős–Gallai, Havel–Hakimi) and distributed (implicit, explicit,
//!   approximate).
//! * [`trees`] — tree realization (Algorithms 4 and 5, minimum diameter).
//! * [`connectivity`] — connectivity-threshold realization (NCC1 `O~(1)`
//!   and NCC0 `O~(Δ)` 2-approximations, plus the composed paper-exact
//!   Algorithm 6).
//!
//! See `README.md` for a guided tour and `ARCHITECTURE.md` for the system
//! design (including the builder's full knob matrix and the migration
//! table from the deprecated `realize_*` entry points).

pub use dgr_connectivity as connectivity;
pub use dgr_core as realization;
pub use dgr_graph as graph;
pub use dgr_graphgen as graphgen;
pub use dgr_ncc as ncc;
pub use dgr_primitives as primitives;
pub use dgr_trees as trees;

use dgr_connectivity::{ThresholdAlgo, ThresholdInstance, ThresholdRealization};
use dgr_core::distributed::proto::Flavor;
use dgr_core::DriverOutput;
use dgr_ncc::{Config, EngineStats, Model, RunMetrics, SimError};
use dgr_primitives::sort::SortBackend as PrimitivesSortBackend;
use dgr_trees::{TreeAlgo, TreeRealization};
use std::sync::mpsc;

pub use dgr_ncc::EngineKind as Engine;
pub use dgr_ncc::{
    CapacityPolicy, JsonlSink, MetricsRecorder, NodeId, NullSink, PhaseRounds, ProgressSink,
    Recording, RouteMode, RunEvent, Scenario, ScenarioEvent, Sink,
};
pub use dgr_primitives::sort::SortBackend;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use crate::{
        Engine, Kt0, Realization, Realized, RoundSnapshot, RunOutput, RunSession, SortBackend,
        Workload,
    };
    pub use dgr_connectivity::{ThresholdInstance, ThresholdRealization};
    pub use dgr_core::{DegreeSequence, DistributedRealization, DriverOutput, RealizeError};
    pub use dgr_graph::Graph;
    pub use dgr_ncc::{
        CapacityPolicy, Config, Model, Network, NodeId, NullSink, ProgressSink, Recording,
        RunEvent, RunMetrics, Scenario, ScenarioEvent, Sink,
    };
    pub use dgr_trees::{TreeAlgo, TreeRealization};
}

/// What to realize. Degree workloads take one requested degree per
/// knowledge-path position; threshold workloads take one requirement
/// `ρ ≥ 1` per position.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Algorithm 3: implicit degree realization, exact (Theorem 11).
    Implicit(Vec<usize>),
    /// Theorem 13: the upper-envelope realization (implicit, multigraph
    /// semantics; accepts non-graphic sequences).
    Envelope(Vec<usize>),
    /// Theorem 12: explicit degree realization (both endpoints know every
    /// edge; runs under the queueing policy by default).
    Explicit(Vec<usize>),
    /// Algorithms 4/5: tree realization with the chosen construction.
    Tree {
        /// Requested tree degrees (`Σd = 2(n-1)`, all positive).
        degrees: Vec<usize>,
        /// Chain (Algorithm 4) or minimum-diameter greedy (Algorithm 5).
        algo: TreeAlgo,
    },
    /// Theorem 17: the NCC1 star threshold construction (`O~(1)` rounds;
    /// automatically runs under an NCC1 configuration).
    Ncc1(Vec<usize>),
    /// Algorithm 6 / Theorem 18 with the default cyclic-pipeline phase 1.
    Ncc0Threshold(Vec<usize>),
    /// Algorithm 6 **paper-exact**, composed end to end: phase 1 via the
    /// prefix envelope recursion, the distinctness patch, the phase-2
    /// pipeline, and the explicitness acknowledgements
    /// ([`connectivity::distributed::ncc0_exact`]).
    Ncc0Exact(Vec<usize>),
    /// Algorithm 6 phase 1 in isolation: the Theorem 13 envelope run on
    /// the ρ-sorted prefix sub-network (driver-assigned order).
    PrefixEnvelope(Vec<usize>),
}

/// KT0 knowledge-tracking switch: when tracked, the engine verifies that
/// every send addresses an ID the sender has legitimately learned — a
/// machine-checked proof of NCC0 legality. Ignored under NCC1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kt0 {
    /// Track knowledge and flag violations (the NCC0 default).
    Tracked,
    /// Skip tracking (cheaper; use for throughput measurements).
    Untracked,
}

/// A rejected [`Realization`] request (before any simulation ran), or a
/// simulator error from the run itself.
#[derive(Debug)]
pub enum RealizationError {
    /// The knob combination is invalid; the message says why.
    InvalidRequest(String),
    /// The simulation failed (model violation, round limit, panic).
    Sim(SimError),
}

impl std::fmt::Display for RealizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealizationError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            RealizationError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RealizationError {}

impl From<SimError> for RealizationError {
    fn from(e: SimError) -> Self {
        RealizationError::Sim(e)
    }
}

/// The realized output, by workload family.
///
/// The accessors on [`Realized`] panic with the *family name* on a
/// mismatch (never the full realization — at six-digit `n` that debug
/// dump would be enormous).
#[derive(Clone, Debug)]
pub enum RunOutput {
    /// Degree workloads (implicit/envelope/explicit/masked/prefix).
    Degrees(DriverOutput),
    /// Tree workloads.
    Tree(TreeRealization),
    /// Threshold workloads (boxed: the certification report and neighbor
    /// maps dominate the enum's footprint).
    Threshold(Box<ThresholdRealization>),
}

impl RunOutput {
    /// The family name (for error messages).
    fn family(&self) -> &'static str {
        match self {
            RunOutput::Degrees(_) => "a degree realization",
            RunOutput::Tree(_) => "a tree realization",
            RunOutput::Threshold(_) => "a threshold realization",
        }
    }
}

/// A completed [`Realization`] run: the workload-family output plus the
/// executor's internal statistics.
#[derive(Clone, Debug)]
pub struct Realized {
    /// The realized output.
    pub output: RunOutput,
    /// Executor-internal statistics (compactions, routing-path choices;
    /// all-zero on the threaded oracle).
    pub engine_stats: EngineStats,
}

impl Realized {
    /// The degree-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a degree realization.
    pub fn degrees(&self) -> &DriverOutput {
        match &self.output {
            RunOutput::Degrees(d) => d,
            other => panic!("expected a degree realization, got {}", other.family()),
        }
    }

    /// The tree-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a tree realization.
    pub fn tree(&self) -> &TreeRealization {
        match &self.output {
            RunOutput::Tree(t) => t,
            other => panic!("expected a tree realization, got {}", other.family()),
        }
    }

    /// The threshold-workload output.
    ///
    /// # Panics
    ///
    /// Panics if the workload was not a threshold realization.
    pub fn threshold(&self) -> &ThresholdRealization {
        match &self.output {
            RunOutput::Threshold(t) => t,
            other => panic!("expected a threshold realization, got {}", other.family()),
        }
    }

    /// The run metrics, whichever family the workload belongs to.
    pub fn metrics(&self) -> &RunMetrics {
        match &self.output {
            RunOutput::Degrees(d) => d.metrics(),
            RunOutput::Tree(TreeRealization::Realized(t)) => &t.metrics,
            RunOutput::Tree(TreeRealization::Unrealizable { metrics }) => metrics,
            RunOutput::Threshold(t) => &t.metrics,
        }
    }
}

/// The builder facade over the whole driver stack: workload × engine ×
/// capacity policy × mask × sorting backend × tracking × certification ×
/// observation, one knob each. See the crate docs for examples and
/// `ARCHITECTURE.md` for the full knob matrix (including the
/// "Observability" section on sinks and streaming sessions).
pub struct Realization {
    workload: Workload,
    engine: Engine,
    policy: Option<CapacityPolicy>,
    mask: Option<Vec<bool>>,
    sort: SortBackend,
    tracking: Option<Kt0>,
    seed: u64,
    model: Option<Model>,
    capacity_factor: Option<f64>,
    sequential_ids: bool,
    workers: Option<usize>,
    shards: Option<usize>,
    max_rounds: Option<u64>,
    certify: bool,
    scenario: Option<Scenario>,
    sink: Option<Box<dyn Sink>>,
}

impl Clone for Realization {
    /// Clones every knob. The observation sink is **not** cloned — sinks
    /// are stateful stream consumers with no general copy semantics — so
    /// the clone starts unobserved; attach its own with
    /// [`Realization::observe`] (a shared [`Recording`] clone works for
    /// fan-out capture).
    fn clone(&self) -> Self {
        Realization {
            workload: self.workload.clone(),
            engine: self.engine,
            policy: self.policy,
            mask: self.mask.clone(),
            sort: self.sort,
            tracking: self.tracking,
            seed: self.seed,
            model: self.model,
            capacity_factor: self.capacity_factor,
            sequential_ids: self.sequential_ids,
            workers: self.workers,
            shards: self.shards,
            max_rounds: self.max_rounds,
            certify: self.certify,
            scenario: self.scenario.clone(),
            sink: None,
        }
    }
}

impl std::fmt::Debug for Realization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Realization")
            .field("workload", &self.workload)
            .field("engine", &self.engine)
            .field("policy", &self.policy)
            .field("mask", &self.mask.as_ref().map(Vec::len))
            .field("sort", &self.sort)
            .field("tracking", &self.tracking)
            .field("seed", &self.seed)
            .field("model", &self.model)
            .field("capacity_factor", &self.capacity_factor)
            .field("sequential_ids", &self.sequential_ids)
            .field("workers", &self.workers)
            .field("shards", &self.shards)
            .field("max_rounds", &self.max_rounds)
            .field("certify", &self.certify)
            .field("scenario", &self.scenario)
            .field("observed", &self.sink.is_some())
            .finish()
    }
}

impl Realization {
    /// Starts a request for the given workload. Defaults: batched
    /// engine, seed 0, bitonic sort, tracking on under NCC0, the
    /// workload's natural capacity policy (queueing for the explicit and
    /// NCC0-threshold constructions, strict otherwise), certification on.
    pub fn new(workload: Workload) -> Self {
        Realization {
            workload,
            engine: Engine::Batched,
            policy: None,
            mask: None,
            sort: SortBackend::Bitonic,
            tracking: None,
            seed: 0,
            model: None,
            capacity_factor: None,
            sequential_ids: false,
            workers: None,
            shards: None,
            max_rounds: None,
            certify: true,
            scenario: None,
            sink: None,
        }
    }

    /// Selects the executor (default: [`Engine::Batched`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the capacity policy (default: the workload's natural
    /// policy — queueing where staggered hand-offs need receive-side
    /// queueing, strict otherwise).
    pub fn policy(mut self, policy: CapacityPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Restricts the run to a sub-network: only masked-in path positions
    /// participate (degree workloads only; the knowledge path links
    /// across the rest).
    pub fn mask(mut self, participants: Vec<bool>) -> Self {
        self.mask = Some(participants);
        self
    }

    /// Selects the Theorem 3 sorting backend (default: bitonic). The
    /// randomized backend requires a queueing or recording policy.
    pub fn sort(mut self, sort: SortBackend) -> Self {
        self.sort = sort;
        self
    }

    /// Switches KT0 knowledge tracking (default: tracked under NCC0).
    pub fn tracking(mut self, tracking: Kt0) -> Self {
        self.tracking = Some(tracking);
        self
    }

    /// Sets the master seed (IDs, path order, node RNGs, stagger
    /// schedules). Identical requests with identical seeds replay
    /// identically, on either engine and any worker count.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the model variant (default: NCC1 for the
    /// [`Workload::Ncc1`] star, NCC0 otherwise). Per the paper's remark,
    /// every NCC0 algorithm runs unchanged under NCC1.
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Overrides the capacity multiplier `c` in `cap = c·log₂ n`.
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = Some(factor);
        self
    }

    /// Uses sequential IDs `1..=n` (figure-exact runs; the honest
    /// random-ID setting is the default).
    pub fn sequential_ids(mut self) -> Self {
        self.sequential_ids = true;
        self
    }

    /// Pins the batched executor's worker count (`0`/default = auto).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Splits the batched executor into ownership shards (default: `1`,
    /// the single-arena layout): each shard owns a private slot arena,
    /// wire/queue buffers and knowledge-tracker arena for a contiguous
    /// dense-index range, joined per round by a deterministic
    /// boundary-exchange phase. A layout knob like [`Realization::workers`]
    /// — transcripts, metrics and event streams are bit-identical at every
    /// shard count, and the threaded oracle ignores it.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Attaches a seeded adversary: a [`Scenario`] schedule of message
    /// faults (drop / duplicate / reorder rates over round windows) and
    /// node churn (crash-stop, crash-recovery, late joins), injected
    /// deterministically between the engine's routing seal and delivery.
    /// The schedule rides the simulator configuration, so it applies to
    /// **every** batched protocol run the workload performs (round
    /// numbers restart per run). Fault injection never changes what a
    /// scenario-free run would do — an empty schedule is bit-identical
    /// to no scenario at all, and a given `(seed, scenario)` pair replays
    /// identically at any worker or shard count. Batched engine only:
    /// combining it with [`Engine::Threaded`] is rejected at validation.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Overrides the round-limit safety valve.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Switches the threshold workloads' max-flow certification (an
    /// `O(n)`-flows cost; switch off at six-digit `n` and verify
    /// structurally — the returned report is then marked `skipped` and
    /// `report.certified()` stays false). Ignored by non-threshold
    /// workloads.
    pub fn certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Attaches an observer: every [`RunEvent`] of the run — rounds,
    /// phase changes, compactions, certification — streams into `sink`
    /// while the run executes. Use [`Recording`] to capture (clones
    /// share the buffer), [`ProgressSink`] for live stderr progress,
    /// [`JsonlSink`] for a machine-readable feed. A second call replaces
    /// the first sink. Works with both [`Realization::run`] and
    /// [`Realization::run_streaming`] (the session sees the same events).
    pub fn observe<S: Sink + 'static>(mut self, sink: S) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The workload's input length.
    fn input_len(&self) -> usize {
        match &self.workload {
            Workload::Implicit(d) | Workload::Envelope(d) | Workload::Explicit(d) => d.len(),
            Workload::Tree { degrees, .. } => degrees.len(),
            Workload::Ncc1(r)
            | Workload::Ncc0Threshold(r)
            | Workload::Ncc0Exact(r)
            | Workload::PrefixEnvelope(r) => r.len(),
        }
    }

    /// The workload's natural capacity policy.
    fn default_policy(&self) -> CapacityPolicy {
        match &self.workload {
            Workload::Explicit(_) | Workload::Ncc0Threshold(_) | Workload::Ncc0Exact(_) => {
                CapacityPolicy::Queue
            }
            _ => CapacityPolicy::Strict,
        }
    }

    /// The workload knob's constructor name, for error messages that
    /// point at the offending builder call.
    fn workload_name(&self) -> &'static str {
        match &self.workload {
            Workload::Implicit(_) => "Workload::Implicit",
            Workload::Envelope(_) => "Workload::Envelope",
            Workload::Explicit(_) => "Workload::Explicit",
            Workload::Tree { .. } => "Workload::Tree",
            Workload::Ncc1(_) => "Workload::Ncc1",
            Workload::Ncc0Threshold(_) => "Workload::Ncc0Threshold",
            Workload::Ncc0Exact(_) => "Workload::Ncc0Exact",
            Workload::PrefixEnvelope(_) => "Workload::PrefixEnvelope",
        }
    }

    /// Builds the simulator configuration from the knobs. Every rejection
    /// names the offending builder call and the value it was given.
    fn config(&self) -> Result<Config, RealizationError> {
        let default_model = match &self.workload {
            Workload::Ncc1(_) => Model::Ncc1,
            _ => Model::Ncc0,
        };
        let model = self.model.unwrap_or(default_model);
        if matches!(self.workload, Workload::Ncc1(_)) && model == Model::Ncc0 {
            return Err(RealizationError::InvalidRequest(
                ".model(Model::Ncc0) contradicts Workload::Ncc1: the Theorem 17 star \
                 construction needs the NCC1 model (all IDs common knowledge)"
                    .into(),
            ));
        }
        let mut config = match model {
            Model::Ncc1 => Config::ncc1(self.seed),
            Model::Ncc0 => Config::ncc0(self.seed),
        };
        config.capacity_policy = self.policy.unwrap_or_else(|| self.default_policy());
        if let Some(tracking) = self.tracking {
            config.track_knowledge = tracking == Kt0::Tracked && config.model == Model::Ncc0;
        }
        if let Some(factor) = self.capacity_factor {
            if !factor.is_finite() || factor <= 0.0 {
                return Err(RealizationError::InvalidRequest(format!(
                    ".capacity_factor({factor}) is not a usable multiplier — the per-round \
                     capacity c·log₂ n needs a finite, positive c"
                )));
            }
            config.capacity_factor = factor;
        }
        if self.sequential_ids {
            config = config.with_sequential_ids();
        }
        if let Some(workers) = self.workers {
            config.worker_threads = workers;
        }
        if let Some(shards) = self.shards {
            if shards == 0 {
                return Err(RealizationError::InvalidRequest(
                    ".shards(0) leaves the engine without a layout — the ownership-sharded \
                     executor needs at least one shard (1 = the single-arena layout)"
                        .into(),
                ));
            }
            let participants = match &self.mask {
                Some(mask) => mask.iter().filter(|&&p| p).count(),
                None => self.input_len(),
            };
            if shards > participants {
                return Err(RealizationError::InvalidRequest(format!(
                    ".shards({shards}) exceeds the {participants} participating nodes — \
                     every ownership shard needs a non-empty dense-index range"
                )));
            }
            config.shards = shards;
        }
        if let Some(max_rounds) = self.max_rounds {
            config.max_rounds = max_rounds;
        }
        if matches!(self.sort, SortBackend::RandomizedLogN { .. })
            && config.capacity_policy == CapacityPolicy::Strict
        {
            let policy_source = if self.policy.is_some() {
                ".policy(CapacityPolicy::Strict) was requested".to_string()
            } else {
                format!("{}'s natural policy is Strict", self.workload_name())
            };
            return Err(RealizationError::InvalidRequest(format!(
                ".sort(SortBackend::RandomizedLogN {{ .. }}) needs a queueing (or \
                 recording) capacity policy for its scatter fan-in, but {policy_source} — \
                 add .policy(CapacityPolicy::Queue)"
            )));
        }
        if let Some(scenario) = &self.scenario {
            if self.engine == Engine::Threaded {
                return Err(RealizationError::InvalidRequest(format!(
                    ".scenario(seed {}) cannot run on .engine(Engine::Threaded) — fault \
                     injection lives in the batched engines' routing seal; drop the \
                     engine override or use Engine::Batched",
                    scenario.seed()
                )));
            }
            if let Err(why) = scenario.validate(
                self.input_len(),
                self.mask.as_deref(),
                config.capacity_policy,
            ) {
                return Err(RealizationError::InvalidRequest(format!(
                    ".scenario(seed {}) is inconsistent with this request: {why}",
                    scenario.seed()
                )));
            }
            config.scenario = Some(scenario.clone());
        }
        Ok(config)
    }

    /// Validates the whole knob combination, returning the simulator
    /// configuration a run would use.
    fn validate(&self) -> Result<Config, RealizationError> {
        if self.input_len() == 0 {
            return Err(RealizationError::InvalidRequest(format!(
                "{} was given an empty input — the workload needs at least one node",
                self.workload_name()
            )));
        }
        if let Some(mask) = &self.mask {
            let degree_workload = matches!(
                self.workload,
                Workload::Implicit(_) | Workload::Envelope(_) | Workload::Explicit(_)
            );
            if !degree_workload {
                return Err(RealizationError::InvalidRequest(format!(
                    ".mask({} entries) applies to degree workloads only — {} realizes \
                     over the whole network",
                    mask.len(),
                    self.workload_name()
                )));
            }
            if mask.len() != self.input_len() {
                return Err(RealizationError::InvalidRequest(format!(
                    ".mask({} entries) does not match the {}-node {} input \
                     (one mask entry per path position is required)",
                    mask.len(),
                    self.input_len(),
                    self.workload_name()
                )));
            }
        }
        self.config()
    }

    /// Validates the knob combination and runs the realization to
    /// completion, returning the whole-run output. For a live view of the
    /// run attach a sink ([`Realization::observe`]) or switch to
    /// [`Realization::run_streaming`].
    ///
    /// # Errors
    ///
    /// [`RealizationError::InvalidRequest`] for contradictory knobs
    /// (mask on a non-degree workload, mask length mismatch, randomized
    /// sort under the strict policy — the message names the offending
    /// builder call and value), [`RealizationError::Sim`] for simulator
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if a threshold workload's requirements are invalid
    /// (`ρ = 0` or `ρ ≥ n` — no simple graph can satisfy them).
    pub fn run(self) -> Result<Realized, RealizationError> {
        self.run_inner(None)
    }

    /// Validates the knob combination and starts the realization as a
    /// pull-based **streaming session**: the engine runs on a worker
    /// thread but blocks at every event until the session consumes it, so
    /// [`RunSession::next_round`] literally steps the run one round at a
    /// time — six-digit runs become inspectable mid-flight instead of
    /// post-hoc. Call [`RunSession::finish`] for the final output (it
    /// drains any remaining events). An [`Realization::observe`] sink
    /// sees the same stream, in the same order, from the worker thread.
    ///
    /// # Errors
    ///
    /// As for [`Realization::run`]; knob validation happens eagerly, so
    /// invalid requests fail here and never spawn the worker.
    pub fn run_streaming(self) -> Result<RunSession, RealizationError> {
        self.validate()?;
        // A rendezvous channel: the engine's emit blocks until the
        // session pulls, which is what makes the session a *stepper*
        // rather than a tail on a buffer.
        let (tx, rx) = mpsc::sync_channel(0);
        let handle = std::thread::Builder::new()
            .name("dgr-run-session".into())
            .spawn(move || {
                self.run_inner(Some(ChannelSink {
                    tx,
                    connected: true,
                }))
            })
            .expect("failed to spawn the run-session worker thread");
        Ok(RunSession {
            rx: Some(rx),
            handle: Some(handle),
            rounds_done: false,
        })
    }

    /// The shared execution path: validate, compose the observation
    /// sinks, dispatch to the workload's engine room.
    fn run_inner(mut self, streaming: Option<ChannelSink>) -> Result<Realized, RealizationError> {
        let config = self.validate()?;
        let mut user = self.sink.take();
        let mut chan = streaming;
        let mut tee;
        let sink: Option<&mut dyn Sink> = match (user.as_deref_mut(), chan.as_mut()) {
            (Some(user), Some(chan)) => {
                tee = Tee(user, chan);
                Some(&mut tee)
            }
            (Some(user), None) => Some(user),
            (None, Some(chan)) => Some(chan),
            (None, None) => None,
        };
        let sort: PrimitivesSortBackend = self.sort;
        let mask = self.mask.as_deref();
        let (output, engine_stats) = match &self.workload {
            Workload::Implicit(d) | Workload::Envelope(d) | Workload::Explicit(d) => {
                let flavor = match &self.workload {
                    Workload::Implicit(_) => Flavor::Implicit,
                    Workload::Envelope(_) => Flavor::Envelope,
                    _ => Flavor::Explicit,
                };
                let run =
                    dgr_core::realize_degrees(d, mask, config, flavor, self.engine, sort, sink)?;
                (RunOutput::Degrees(run.output), run.engine)
            }
            Workload::Tree { degrees, algo } => {
                let run =
                    dgr_trees::realize_tree_run(degrees, config, *algo, self.engine, sort, sink)?;
                (RunOutput::Tree(run.output), run.engine)
            }
            Workload::Ncc1(r) | Workload::Ncc0Threshold(r) | Workload::Ncc0Exact(r) => {
                let algo = match &self.workload {
                    Workload::Ncc1(_) => ThresholdAlgo::Ncc1Star,
                    Workload::Ncc0Threshold(_) => ThresholdAlgo::Ncc0Pipeline,
                    _ => ThresholdAlgo::Ncc0Exact,
                };
                let inst = ThresholdInstance::new(r.clone());
                let run = dgr_connectivity::realize_threshold_run(
                    &inst,
                    config,
                    algo,
                    self.engine,
                    sort,
                    self.certify,
                    sink,
                )?;
                (RunOutput::Threshold(Box::new(run.output)), run.engine)
            }
            Workload::PrefixEnvelope(r) => {
                let inst = ThresholdInstance::new(r.clone());
                let run = dgr_connectivity::realize_prefix_envelope_run(
                    &inst,
                    config,
                    self.engine,
                    sink,
                )?;
                (RunOutput::Degrees(run.output), run.engine)
            }
        };
        Ok(Realized {
            output,
            engine_stats,
        })
    }
}

/// Feeds the user's sink and the streaming session from one stream.
struct Tee<'a>(&'a mut dyn Sink, &'a mut ChannelSink);

impl Sink for Tee<'_> {
    fn emit(&mut self, event: &RunEvent) {
        self.0.emit(event);
        self.1.emit(event);
    }
}

/// The worker-thread end of a streaming session: a rendezvous sender, so
/// the engine cannot advance past an unconsumed event. Once the session
/// hangs up (dropped receiver) the run continues unobserved to
/// completion — the result is still collected by `RunSession::finish`
/// (or discarded by `Drop`).
struct ChannelSink {
    tx: mpsc::SyncSender<RunEvent>,
    connected: bool,
}

impl Sink for ChannelSink {
    fn emit(&mut self, event: &RunEvent) {
        if self.connected && self.tx.send(event.clone()).is_err() {
            self.connected = false;
        }
    }
}

/// One completed round pulled from a [`RunSession`]: the round's headline
/// numbers plus every event that preceded it since the last pull (phase
/// changes, stage transitions, compactions).
#[derive(Clone, Debug)]
pub struct RoundSnapshot {
    /// 0-based round index.
    pub round: u64,
    /// Messages delivered this round.
    pub delivered: u64,
    /// Nodes still live after the round's step phase.
    pub live: usize,
    /// The batched executor's dense/sparse classification of this round
    /// (worker-count-invariant scheduling detail;
    /// [`RouteMode::Unspecified`] on the threaded oracle).
    pub route_mode: RouteMode,
    /// Events emitted since the previous snapshot, excluding the
    /// [`RunEvent::RoundCompleted`] this snapshot summarizes.
    pub events: Vec<RunEvent>,
}

/// A live, pull-based realization run (from
/// [`Realization::run_streaming`]). The engine executes on a worker
/// thread but rendezvouses with this session on every event: until
/// [`RunSession::next_round`] (or [`RunSession::next_event`]) is called,
/// the run does not advance — the session is a stepper, not a spectator.
///
/// Dropping the session mid-run detaches it: the run finishes unobserved
/// on the worker thread (the drop joins it) and the output is discarded.
pub struct RunSession {
    rx: Option<mpsc::Receiver<RunEvent>>,
    handle: Option<std::thread::JoinHandle<Result<Realized, RealizationError>>>,
    rounds_done: bool,
}

impl RunSession {
    /// Advances the run to the next completed round and returns its
    /// snapshot, or `None` once the engine's round loop has finished (or
    /// failed — [`RunSession::finish`] reports which).
    pub fn next_round(&mut self) -> Option<RoundSnapshot> {
        if self.rounds_done {
            return None;
        }
        let rx = self.rx.as_ref()?;
        let mut events = Vec::new();
        loop {
            match rx.recv() {
                Ok(RunEvent::RoundCompleted {
                    round,
                    delivered,
                    live,
                    route_mode,
                }) => {
                    return Some(RoundSnapshot {
                        round,
                        delivered,
                        live,
                        route_mode,
                        events,
                    })
                }
                Ok(RunEvent::Done { .. }) => {
                    self.rounds_done = true;
                    return None;
                }
                Ok(event) => events.push(event),
                Err(mpsc::RecvError) => {
                    // Worker hung up without `Done`: the run errored.
                    self.rounds_done = true;
                    return None;
                }
            }
        }
    }

    /// Advances the run to the next single event (finer-grained than
    /// [`RunSession::next_round`]; also yields the post-`Done`
    /// driver-level events such as certification). `None` once the worker
    /// has hung up.
    pub fn next_event(&mut self) -> Option<RunEvent> {
        let event = self.rx.as_ref()?.recv().ok()?;
        if matches!(event, RunEvent::Done { .. }) {
            self.rounds_done = true;
        }
        Some(event)
    }

    /// Lets the run finish (draining any unconsumed events) and returns
    /// its final output — exactly what [`Realization::run`] would have
    /// returned.
    ///
    /// # Panics
    ///
    /// Propagates a worker-thread panic (a protocol bug surfaces on the
    /// engine as [`SimError::NodePanic`] instead, so this is unreachable
    /// in practice).
    pub fn finish(mut self) -> Result<Realized, RealizationError> {
        if let Some(rx) = self.rx.take() {
            // Unblock the rendezvous until the worker is done emitting.
            while rx.recv().is_ok() {}
        }
        let handle = self.handle.take().expect("run session already finished");
        match handle.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

impl Drop for RunSession {
    fn drop(&mut self) {
        // Hanging up first lets the worker free-run to completion; the
        // join then only waits for the unobserved remainder.
        self.rx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_contradictory_knobs_naming_the_offender() {
        // Mask on a tree workload: the message names the knob and the
        // workload that rejected it.
        let err = Realization::new(Workload::Tree {
            degrees: vec![1, 2, 1],
            algo: TreeAlgo::Greedy,
        })
        .mask(vec![true, true, false])
        .run()
        .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)), "{err}");
        assert!(err.to_string().contains(".mask(3 entries)"), "{err}");
        assert!(err.to_string().contains("Workload::Tree"), "{err}");

        // Mask length mismatch: both lengths named.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .mask(vec![true])
            .run()
            .unwrap_err();
        assert!(err.to_string().contains(".mask(1 entries)"), "{err}");
        assert!(err.to_string().contains("2-node"), "{err}");

        // Randomized sort under the strict policy: the sort knob and the
        // policy source are both named.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .sort(SortBackend::RandomizedLogN { seed: 1 })
            .policy(CapacityPolicy::Strict)
            .run()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains(".sort(SortBackend::RandomizedLogN"),
            "{err}"
        );
        assert!(
            err.to_string()
                .contains(".policy(CapacityPolicy::Strict) was requested"),
            "{err}"
        );
        // ... and when the strictness came from the workload default, the
        // message says so instead of blaming an absent .policy() call.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .sort(SortBackend::RandomizedLogN { seed: 1 })
            .run()
            .unwrap_err();
        assert!(
            err.to_string().contains("natural policy is Strict"),
            "{err}"
        );

        // Empty workload: names the workload variant.
        let err = Realization::new(Workload::Implicit(vec![]))
            .run()
            .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)));
        assert!(err.to_string().contains("Workload::Implicit"), "{err}");

        // A broken capacity factor names the knob and its value.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .capacity_factor(-1.0)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains(".capacity_factor(-1)"), "{err}");

        // NCC0 model forced onto the NCC1 star: the model knob is named.
        let err = Realization::new(Workload::Ncc1(vec![1, 1]))
            .model(Model::Ncc0)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains(".model(Model::Ncc0)"), "{err}");

        // Streaming validates eagerly: no worker is spawned for a
        // contradictory request.
        let err = Realization::new(Workload::Implicit(vec![]))
            .run_streaming()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)));
    }

    #[test]
    fn shards_knob_validates_and_threads_through() {
        // Zero shards: no layout at all — named knob and value.
        let err = Realization::new(Workload::Implicit(vec![1, 1]))
            .shards(0)
            .run()
            .unwrap_err();
        assert!(matches!(err, RealizationError::InvalidRequest(_)), "{err}");
        assert!(err.to_string().contains(".shards(0)"), "{err}");

        // More shards than nodes: both numbers named.
        let err = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
            .shards(5)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains(".shards(5)"), "{err}");
        assert!(err.to_string().contains("4 participating"), "{err}");

        // The participant count is mask-aware: ownership shards split the
        // dense (masked-in) space, not the raw input length.
        let err = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
            .mask(vec![true, true, true, false])
            .shards(4)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains(".shards(4)"), "{err}");
        assert!(err.to_string().contains("3 participating"), "{err}");

        // A legal shard count reaches the engine, and the realization is
        // bit-identical to the single-arena layout.
        let build = || Realization::new(Workload::Implicit(vec![3, 2, 2, 2, 1, 1, 1])).seed(17);
        let flat = build().run().unwrap();
        let sharded = build().shards(3).run().unwrap();
        assert_eq!(sharded.engine_stats.shards, 3);
        assert_eq!(sharded.engine_stats.shard_windows.iter().sum::<usize>(), 7);
        assert_eq!(flat.metrics(), sharded.metrics());
        assert_eq!(
            flat.degrees().expect_realized().graph.edge_list(),
            sharded.degrees().expect_realized().graph.edge_list()
        );
    }

    #[test]
    fn streaming_session_steps_rounds_and_matches_one_shot() {
        let build = || Realization::new(Workload::Implicit(vec![3, 2, 2, 2, 1, 1, 1])).seed(17);
        let one_shot = build().run().unwrap();

        let recording = Recording::new();
        let mut session = build().observe(recording.clone()).run_streaming().unwrap();
        let mut rounds = 0u64;
        while let Some(snapshot) = session.next_round() {
            assert_eq!(snapshot.round, rounds, "rounds must arrive in order");
            rounds += 1;
        }
        let streamed = session.finish().unwrap();
        assert_eq!(rounds, streamed.metrics().rounds, "a snapshot per round");
        assert_eq!(one_shot.metrics(), streamed.metrics());
        assert_eq!(
            one_shot.degrees().expect_realized().graph.edge_list(),
            streamed.degrees().expect_realized().graph.edge_list()
        );
        // The observe() sink saw the same stream the session consumed,
        // and replaying it through a MetricsRecorder reproduces the
        // executor statistics — the stats are a pure stream derivation.
        let events = recording.events();
        assert!(matches!(events.last(), Some(RunEvent::Done { .. })));
        let mut recorder = MetricsRecorder::new();
        for event in &events {
            recorder.emit(event);
        }
        assert_eq!(recorder.rounds(), streamed.metrics().rounds);
        assert_eq!(recorder.messages(), streamed.metrics().messages);
        let replayed = recorder.engine_stats();
        assert_eq!(replayed.compactions, streamed.engine_stats.compactions);
        assert_eq!(
            replayed.inline_route_rounds,
            streamed.engine_stats.inline_route_rounds
        );
        assert_eq!(
            replayed.parallel_route_rounds,
            streamed.engine_stats.parallel_route_rounds
        );
    }

    #[test]
    fn dropping_a_session_mid_run_detaches_cleanly() {
        let mut session = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
            .seed(7)
            .run_streaming()
            .unwrap();
        // Pull one round, then walk away; Drop joins the free-running
        // remainder without deadlocking.
        assert!(session.next_round().is_some());
        drop(session);
    }

    #[test]
    fn certification_events_follow_done() {
        let recording = Recording::new();
        let out = Realization::new(Workload::Ncc1(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .observe(recording.clone())
            .run()
            .unwrap();
        assert!(out.threshold().report.certified());
        let events = recording.events();
        let done_at = events
            .iter()
            .position(|e| matches!(e, RunEvent::Done { .. }))
            .expect("engine Done");
        let started_at = events
            .iter()
            .position(|e| matches!(e, RunEvent::CertificationStarted { .. }))
            .expect("certification started");
        assert!(started_at > done_at);
        assert!(matches!(
            events.last(),
            Some(RunEvent::CertificationResult {
                satisfied: true,
                ..
            })
        ));
        // Skipped certification stays silent.
        let silent = Recording::new();
        Realization::new(Workload::Ncc1(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .certify(false)
            .observe(silent.clone())
            .run()
            .unwrap();
        assert!(!silent
            .events()
            .iter()
            .any(|e| matches!(e, RunEvent::CertificationStarted { .. })));
    }

    #[test]
    fn builder_covers_every_workload() {
        let out = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
            .seed(41)
            .run()
            .unwrap();
        assert_eq!(out.degrees().expect_realized().graph.edge_count(), 3);

        let out = Realization::new(Workload::Envelope(vec![3, 3, 1, 0]))
            .seed(5)
            .run()
            .unwrap();
        assert!(!out.degrees().is_unrealizable());

        let out = Realization::new(Workload::Explicit(vec![1, 1, 2, 2]))
            .seed(9)
            .run()
            .unwrap();
        assert!(!out
            .degrees()
            .expect_realized()
            .explicit_neighbors
            .is_empty());

        let out = Realization::new(Workload::Tree {
            degrees: vec![2, 2, 1, 1],
            algo: TreeAlgo::Greedy,
        })
        .seed(90)
        .run()
        .unwrap();
        assert!(out.tree().expect_realized().graph.is_tree());

        let out = Realization::new(Workload::Ncc1(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::Ncc0Threshold(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::Ncc0Exact(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(out.threshold().report.satisfied);

        let out = Realization::new(Workload::PrefixEnvelope(vec![2, 2, 1, 1, 1]))
            .seed(55)
            .run()
            .unwrap();
        assert!(!out.degrees().is_unrealizable());
    }

    #[test]
    fn certification_can_be_skipped() {
        let out = Realization::new(Workload::Ncc1(vec![2, 1, 1, 1]))
            .certify(false)
            .seed(3)
            .run()
            .unwrap();
        assert_eq!(out.threshold().report.pairs_checked, 0);
        assert!(out.threshold().report.skipped);
        assert!(!out.threshold().report.certified());
    }

    #[test]
    fn engines_agree_through_the_builder() {
        let run = |engine: Engine| {
            Realization::new(Workload::Implicit(vec![3, 2, 2, 2, 1, 1, 1]))
                .engine(engine)
                .seed(17)
                .run()
                .unwrap()
        };
        let batched = run(Engine::Batched);
        let threaded = run(Engine::Threaded);
        assert_eq!(batched.metrics().rounds, threaded.metrics().rounds);
        assert_eq!(batched.metrics().messages, threaded.metrics().messages);
        assert_eq!(
            batched.degrees().expect_realized().graph.edge_list(),
            threaded.degrees().expect_realized().graph.edge_list()
        );
    }
}
