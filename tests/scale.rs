//! Scale tests. The direct-style algorithms run on the thread-per-node
//! oracle at four-digit network sizes; the step-function protocols run on
//! the batched executor at six-digit sizes (and seven digits under
//! `--ignored` / in the release-mode engine bench). They exist to catch
//! regressions in engine scalability and in the O(polylog)-round claims
//! at scale.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;
use distributed_graph_realizations::{connectivity, graphgen, primitives, trees};
use distributed_graph_realizations::{ncc, realization, Engine, Kt0};

#[test]
fn implicit_realization_at_n_1024() {
    let n = 1024;
    let degrees = graphgen::near_regular_sequence(n, 6, 99);
    let out = Realization::new(Workload::Implicit(degrees.clone()))
        .engine(Engine::Threaded)
        .seed(99)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert!(r.metrics.is_clean());
    // Lemma 10 at scale.
    let seq = DegreeSequence::new(degrees);
    let bound = realization::distributed::implicit::phase_bound(&seq);
    assert!((r.phases as f64) <= 2.0 * bound + 4.0);
}

#[test]
fn greedy_tree_at_n_2048() {
    let n = 2048;
    let degrees = graphgen::random_tree_sequence(n, 98);
    let out = Realization::new(Workload::Tree {
        degrees: degrees.clone(),
        algo: TreeAlgo::Greedy,
    })
    .engine(Engine::Threaded)
    .seed(98)
    .run()
    .unwrap();
    let t = out.tree().expect_realized();
    assert!(t.graph.is_tree());
    // Polylog rounds at scale: log2(2048) = 11 → comfortably under
    // 8·log² n.
    assert!(
        t.metrics.rounds < 8 * 11 * 11,
        "rounds = {}",
        t.metrics.rounds
    );
    // Theorem 16 still holds at scale.
    let seq = DegreeSequence::new(degrees);
    let reference = trees::greedy::greedy_tree(&seq).unwrap();
    assert_eq!(t.diameter, trees::greedy::diameter_of(&reference, n));
}

/// The NCC₀ path-to-clique warm-up on the batched engine at 200k nodes —
/// two orders of magnitude past what thread-per-node can spawn.
#[test]
fn batched_warmup_at_n_200k() {
    let n = 200_000;
    let mut config = Config::ncc0(123);
    config.track_knowledge = false; // KT0-legality is proven at small n
    let net = Network::new(n, config);
    let result = net
        .run_protocol(primitives::proto::PathToClique::new)
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert_eq!(result.outputs.len(), n);
    // Spot-check power-of-two contacts deep in the path.
    let order = result.gk_order();
    let mid = n / 2;
    let out = result.output_of(order[mid]).unwrap();
    assert_eq!(out.contacts.ahead(16), Some(order[mid + (1 << 16)]));
    assert_eq!(out.contacts.behind(16), Some(order[mid - (1 << 16)]));
}

/// The acceptance-scale run: one million nodes of NCC₀ warm-up. Heavy for
/// the default debug-mode suite, so it runs under `--ignored` (the
/// release-mode `engine_bench` binary exercises the same workload and
/// records its throughput in `BENCH_engine.json`).
#[test]
#[ignore = "seven-digit n; run with --ignored or via engine_bench"]
fn batched_warmup_at_n_1m() {
    let n = 1_000_000;
    let mut config = Config::ncc0(7);
    config.track_knowledge = false;
    let net = Network::new(n, config);
    let result = net
        .run_protocol(primitives::proto::PathToClique::new)
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert_eq!(result.outputs.len(), n);
}

/// The release-mode tracked smoke CI runs on every push: the 200k NCC₀
/// warm-up with the full knowledge tracker **and** the queue capacity
/// policy — the configuration that exercises the two-phase parallel
/// deliver pass, the parallel learn sweep, and the arena tracker's
/// in-place/re-home split all at once.
#[test]
fn tracked_queue_warmup_at_n_200k() {
    let n = 200_000;
    let mut config = Config::ncc0(29);
    config.capacity_policy = CapacityPolicy::Queue;
    let net = Network::new(n, config);
    let result = net
        .run_protocol(primitives::proto::PathToClique::new)
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert!(
        result.metrics.max_knowledge > 0,
        "tracking was on; knowledge must accumulate"
    );
    // Unmasked run: the dense index space is the whole network, and the
    // knowledge arena grew to hold every node's contact set.
    assert_eq!(result.engine.dense_index_space, n);
    assert!(result.engine.knowledge_arena >= n);
}

/// The release-mode adversarial smoke CI runs alongside the tracked one:
/// the same 200k queue-paced tracked warm-up with a seeded scenario
/// dropping 1% of all sealed traffic. Faults degrade the transcript,
/// never the engine — the run still completes in the fixed warm-up round
/// count, stays violation-free (drops happen *after* validation), keeps
/// accumulating knowledge from what does get through, and the fault
/// counters reconcile with a seeded replay.
#[test]
fn drop1_tracked_queue_warmup_at_n_200k() {
    let n = 200_000;
    let run = || {
        let mut config = Config::ncc0(29);
        config.capacity_policy = CapacityPolicy::Queue;
        let config = config.with_scenario(Scenario::new(29).drop_messages(0..=u64::MAX, 0.01));
        let net = Network::new(n, config);
        net.run_protocol(primitives::proto::PathToClique::new)
            .unwrap()
    };
    let result = run();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert_eq!(result.outputs.len(), n, "every node still retires");
    assert!(
        result.metrics.max_knowledge > 0,
        "tracking was on; surviving traffic must still teach"
    );
    assert!(
        result.engine.faults_dropped > 0,
        "the full-window 1% schedule must fire at 200k scale"
    );
    // Same (run seed, scenario seed) → the same messages die.
    let replay = run();
    assert_eq!(replay.engine.faults_dropped, result.engine.faults_dropped);
    assert_eq!(replay.metrics, result.metrics);
}

/// The road-to-10⁷ milestone, now the ownership-sharded exit bar: the
/// NCC₀ path-to-clique warm-up at ten million nodes across eight shards
/// with full KT0 knowledge tracking **on** — every contact learned
/// through the boundary-exchange phase lands in some shard's private
/// tracker arena, and per-shard compaction must survive the run's
/// retirement wave without breaking the dense-index remap. Run under
/// `--ignored` (release mode required in practice).
#[test]
#[ignore = "eight-digit n; run with --ignored in release mode"]
fn batched_warmup_at_n_10m() {
    let n = 10_000_000;
    let config = Config::ncc0(31).with_shards(8);
    let net = Network::new(n, config);
    let result = net
        .run_protocol(primitives::proto::PathToClique::new)
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert_eq!(result.outputs.len(), n);
    assert!(
        result.metrics.max_knowledge > 0,
        "tracking was on; knowledge must accumulate through the exchange"
    );
    assert_eq!(result.engine.shards, 8);
    assert_eq!(result.engine.shard_windows.iter().sum::<usize>(), n);
    assert!(result.engine.cross_shard_messages > 0);
    assert!(result.engine.knowledge_arena >= n);
}

/// The release-mode **sharded** tracked smoke CI runs alongside the
/// unsharded one: the same 200k queue-paced tracked warm-up split across
/// four ownership shards. Every power-of-two contact crosses shard
/// boundaries through the exchange phase, and the per-shard tracker
/// arenas must add up to the same knowledge footprint the single arena
/// reports.
#[test]
fn sharded_tracked_queue_warmup_at_n_200k() {
    let n = 200_000;
    let mut config = Config::ncc0(29).with_shards(4);
    config.capacity_policy = CapacityPolicy::Queue;
    let net = Network::new(n, config);
    let result = net
        .run_protocol(primitives::proto::PathToClique::new)
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(
        result.metrics.rounds,
        primitives::proto::clique::rounds_for(n)
    );
    assert!(
        result.metrics.max_knowledge > 0,
        "tracking was on; knowledge must accumulate through the exchange"
    );
    assert_eq!(result.engine.shards, 4);
    assert_eq!(result.engine.shard_windows.iter().sum::<usize>(), n);
    assert!(
        result.engine.cross_shard_messages > 0,
        "long-range contacts must cross ownership boundaries"
    );
    assert_eq!(result.engine.dense_index_space, n);
    assert!(result.engine.knowledge_arena >= n);
}

/// The batched NCC1 star construction at 100k nodes, verified
/// structurally (full max-flow certification is `O(n)` Dinic runs and
/// lives in the small-`n` driver tests).
#[test]
fn batched_ncc1_star_at_n_100k() {
    use connectivity::distributed::ncc1_step::Ncc1Star;
    use std::collections::HashMap;
    let n = 100_000;
    let net = ncc::Network::new(n, ncc::Config::ncc1(3));
    let rho: HashMap<u64, usize> = net
        .ids_in_path_order()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, 1 + i % 4))
        .collect();
    let result = net.run_protocol(|s| Ncc1Star::new(s, rho[&s.id])).unwrap();
    assert!(result.metrics.is_clean());
    // The hub is the smallest-ID node with rho = 4; every other node's
    // first edge goes to it.
    let w = *rho
        .iter()
        .filter(|&(_, &r)| r == 4)
        .map(|(id, _)| id)
        .min()
        .unwrap();
    for (id, out) in &result.outputs {
        if *id == w {
            assert!(out.neighbors.is_empty());
        } else {
            assert_eq!(out.neighbors[0], w);
            assert_eq!(out.neighbors.len(), rho[id]);
        }
    }
}

/// A full degree-sequence realization — Algorithm 3 end to end, explicit
/// hand-off included — on the batched engine at 200k nodes, two orders of
/// magnitude past the threaded drivers. A perfect matching keeps the
/// phase count minimal so the default (debug-mode) suite stays fast; the
/// driver still exercises every stage: establish, per-phase sort +
/// contacts + aggregations + interval multicast, and the staggered
/// explicitness hand-off under queueing.
#[test]
fn batched_explicit_realization_at_n_200k() {
    let n = 200_000;
    let degrees = vec![1usize; n];
    // Sequential IDs keep send-time resolution arithmetic (the honest
    // random-ID setting is covered by the 200k warm-up above); KT0
    // legality is proven at small n, so tracking is off.
    let out = Realization::new(Workload::Explicit(degrees))
        .seed(77)
        .sequential_ids()
        .tracking(Kt0::Untracked)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert_eq!(r.graph.edge_count(), n / 2);
    realization::verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert_eq!(r.metrics.undelivered, 0);
    assert!(r.metrics.max_received_per_round <= r.metrics.capacity);
    // O(polylog) rounds: comfortably under 10·log² n (log2 n ≈ 17.6).
    assert!(
        r.metrics.rounds < 10 * 18 * 18,
        "rounds = {}",
        r.metrics.rounds
    );
}

/// The acceptance-scale realization: Algorithm 3 end to end — explicit
/// hand-off included — at one million nodes, an order of magnitude past
/// the pre-interning drivers' memory ceiling. Arc-interned per-node
/// tables, lazy outboxes and live-slot compaction keep the footprint
/// bounded, and since the arena knowledge tracker + parallel learn sweep
/// the run carries **full KT0 tracking** too — a million-node run is now
/// also a million-node legality certificate. Run under `--ignored`
/// (release mode recommended).
#[test]
#[ignore = "seven-digit n; run with --ignored (release mode recommended)"]
fn batched_explicit_realization_at_n_1m() {
    let n = 1_000_000;
    let degrees = vec![1usize; n];
    let out = Realization::new(Workload::Explicit(degrees))
        .seed(81)
        .sequential_ids()
        .tracking(Kt0::Tracked)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert!(
        r.metrics.max_knowledge > 0,
        "tracking was on; the learn sweep must have recorded knowledge"
    );
    assert_eq!(r.graph.edge_count(), n / 2);
    realization::verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert_eq!(r.metrics.undelivered, 0);
    assert!(r.metrics.max_received_per_round <= r.metrics.capacity);
    // O(polylog) rounds: log2(1e6) ≈ 20.
    assert!(
        r.metrics.rounds < 10 * 20 * 20,
        "rounds = {}",
        r.metrics.rounds
    );
}

/// Algorithm 5 at one million nodes (the paper's overlay-network regime):
/// establish, degree sort, prefix sums, and the milestone scan over two
/// million virtual slots. Run under `--ignored`.
#[test]
#[ignore = "seven-digit n; run with --ignored (release mode recommended)"]
fn batched_greedy_tree_at_n_1m() {
    let n = 1_000_000;
    let mut degrees = vec![2usize; n];
    degrees[0] = 1;
    degrees[n - 1] = 1;
    let out = Realization::new(Workload::Tree {
        degrees,
        algo: TreeAlgo::Greedy,
    })
    .seed(82)
    .sequential_ids()
    .tracking(Kt0::Untracked)
    .run()
    .unwrap();
    let t = out.tree().expect_realized();
    assert!(t.graph.is_tree());
    assert_eq!(t.diameter, n - 1, "all-degree-2 greedy tree is a path");
    assert!(
        t.metrics.rounds < 10 * 20 * 20,
        "rounds = {}",
        t.metrics.rounds
    );
}

/// Algorithm 5 (minimum-diameter tree) end to end on the batched engine
/// at 200k nodes: establish, degree sort, prefix sums, and the milestone
/// scan over 400k virtual slots.
#[test]
fn batched_greedy_tree_at_n_200k() {
    let n = 200_000;
    // A path profile: two leaves, the rest internal of degree 2.
    let mut degrees = vec![2usize; n];
    degrees[0] = 1;
    degrees[n - 1] = 1;
    let out = Realization::new(Workload::Tree {
        degrees,
        algo: TreeAlgo::Greedy,
    })
    .seed(78)
    .sequential_ids()
    .tracking(Kt0::Untracked)
    .run()
    .unwrap();
    let t = out.tree().expect_realized();
    assert!(t.graph.is_tree());
    assert_eq!(t.diameter, n - 1, "all-degree-2 greedy tree is a path");
    assert!(
        t.metrics.rounds < 10 * 18 * 18,
        "rounds = {}",
        t.metrics.rounds
    );
}

#[test]
fn sorting_at_n_2048_is_polylog() {
    use distributed_graph_realizations::primitives::{
        sort::{self, Order},
        PathCtx,
    };
    let n = 2048;
    let net = Network::new(n, Config::ncc0(97));
    let result = net
        .run(|h| {
            let c = PathCtx::establish(h);
            let sp = sort::sort_at(h, &c.vp, &c.contacts, c.position, h.id(), Order::Ascending);
            sp.rank
        })
        .unwrap();
    assert!(result.metrics.is_clean());
    // 11·12/2 comparator stages + setup: well under 10·log² n.
    assert!(result.metrics.rounds < 10 * 11 * 11);
    // Ranks form a permutation.
    let mut ranks: Vec<usize> = result.outputs.iter().map(|(_, r)| *r).collect();
    ranks.sort_unstable();
    assert!(ranks.iter().enumerate().all(|(i, &r)| i == r));
}

/// The **composed paper-exact Algorithm 6** at 10⁵ nodes on the batched
/// engine, driven as a **streaming session**: outer ρ sort, prefix
/// envelope recursion (masked sub-path with full-tree control
/// aggregations), distinctness patch, phase-2 pipeline, explicitness
/// acks. The session observes every round as the run executes (the
/// pull-based stepper, not a post-hoc dump), the `PhaseChange` events
/// reconstruct Algorithm 6's data-dependent phases, and the resulting
/// per-phase round breakdown must sum to the total round count. Verified
/// structurally (max-flow certification is `O(n)` Dinic runs and lives
/// in the small-`n` driver tests).
#[test]
fn composed_alg6_exact_at_n_100k_streams_every_round() {
    use distributed_graph_realizations::RunEvent;
    let n = 100_000;
    let rho: Vec<usize> = (0..n).map(|i| 1 + i % 5).collect();
    let mut session = Realization::new(Workload::Ncc0Exact(rho.clone()))
        .certify(false)
        .tracking(Kt0::Untracked)
        .seed(64)
        .run_streaming()
        .unwrap();
    let mut observed_rounds = 0u64;
    let mut phases: Vec<(u64, &'static str)> = Vec::new();
    while let Some(snapshot) = session.next_round() {
        assert_eq!(
            snapshot.round, observed_rounds,
            "round skipped or reordered"
        );
        observed_rounds += 1;
        for event in &snapshot.events {
            if let RunEvent::PhaseChange { round, phase } = event {
                phases.push((*round, *phase));
            }
        }
    }
    let out = session.finish().unwrap();
    let t = out.threshold();
    assert_eq!(
        observed_rounds, t.metrics.rounds,
        "the sink must observe every round"
    );
    // The phase narration starts at round 0 and covers the paper's
    // structure; the breakdown derived from it sums to the total.
    assert_eq!(phases.first(), Some(&(0, "setup")), "{phases:?}");
    assert!(phases.iter().any(|&(_, p)| p == "phase1"), "{phases:?}");
    assert!(phases.iter().any(|&(_, p)| p == "phase2"), "{phases:?}");
    assert_eq!(t.metrics.phase_rounds.len(), phases.len());
    assert_eq!(
        t.metrics.phase_rounds.iter().map(|p| p.rounds).sum::<u64>(),
        t.metrics.rounds,
        "per-phase rounds must sum to the total: {:?}",
        t.metrics.phase_rounds
    );
    assert_eq!(t.metrics.undelivered, 0);
    assert!(t.metrics.max_received_per_round <= t.metrics.capacity);
    // Structural threshold check: every node has at least ρ distinct
    // neighbors, so the star argument of Theorem 18 applies.
    for (&id, &r) in &t.rho {
        assert!(
            t.graph.degree_of(id) >= r,
            "node {id} wanted {r}, got {}",
            t.graph.degree_of(id)
        );
    }
    // Edge bound: Σρ ≤ 2·OPT.
    let sum: usize = rho.iter().sum();
    assert!(t.graph.edge_count() <= sum);
    // O~(Δ) rounds: Δ = 5 here, so polylog dominates.
    assert!(
        t.metrics.rounds < 10 * 18 * 18,
        "rounds = {}",
        t.metrics.rounds
    );
}

/// The Theorem 3 randomized sorting backend drives a full realization at
/// 10⁵ nodes and undercuts the bitonic backend's round bill.
#[test]
fn randomized_sort_backend_at_n_100k() {
    let n = 100_000;
    let degrees = vec![1usize; n];
    let run = |sort: SortBackend| {
        Realization::new(Workload::Implicit(degrees.clone()))
            .sort(sort)
            .policy(CapacityPolicy::Queue)
            .tracking(Kt0::Untracked)
            .sequential_ids()
            .seed(83)
            .run()
            .unwrap()
    };
    let rand = run(SortBackend::RandomizedLogN { seed: 5 });
    let r = rand.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert_eq!(r.metrics.undelivered, 0);
    let bitonic = run(SortBackend::Bitonic);
    assert!(
        r.metrics.rounds < bitonic.degrees().expect_realized().metrics.rounds,
        "randomized {} vs bitonic {}",
        r.metrics.rounds,
        bitonic.degrees().expect_realized().metrics.rounds
    );
}
