//! Scale tests: the thread-per-node simulator at four-digit network
//! sizes. These are the largest routine runs in the suite (the experiment
//! harness goes bigger); they exist to catch regressions in engine
//! scalability and in the O(polylog)-round claims at scale.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{graphgen, realization, trees};

#[test]
fn implicit_realization_at_n_1024() {
    let n = 1024;
    let degrees = graphgen::near_regular_sequence(n, 6, 99);
    let out =
        realization::realize_implicit(&degrees, Config::ncc0(99)).unwrap();
    let r = out.expect_realized();
    realization::verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert!(r.metrics.is_clean());
    // Lemma 10 at scale.
    let seq = DegreeSequence::new(degrees);
    let bound = realization::distributed::implicit::phase_bound(&seq);
    assert!((r.phases as f64) <= 2.0 * bound + 4.0);
}

#[test]
fn greedy_tree_at_n_2048() {
    let n = 2048;
    let degrees = graphgen::random_tree_sequence(n, 98);
    let out = trees::realize_tree(
        &degrees,
        Config::ncc0(98),
        trees::TreeAlgo::Greedy,
    )
    .unwrap();
    let t = out.expect_realized();
    assert!(t.graph.is_tree());
    // Polylog rounds at scale: log2(2048) = 11 → comfortably under
    // 8·log² n.
    assert!(
        t.metrics.rounds < 8 * 11 * 11,
        "rounds = {}",
        t.metrics.rounds
    );
    // Theorem 16 still holds at scale.
    let seq = DegreeSequence::new(degrees);
    let reference = trees::greedy::greedy_tree(&seq).unwrap();
    assert_eq!(t.diameter, trees::greedy::diameter_of(&reference, n));
}

#[test]
fn sorting_at_n_2048_is_polylog() {
    use distributed_graph_realizations::primitives::{
        sort::{self, Order},
        PathCtx,
    };
    let n = 2048;
    let net = Network::new(n, Config::ncc0(97));
    let result = net
        .run(|h| {
            let c = PathCtx::establish(h);
            let sp = sort::sort_at(
                h,
                &c.vp,
                &c.contacts,
                c.position,
                h.id(),
                Order::Ascending,
            );
            sp.rank
        })
        .unwrap();
    assert!(result.metrics.is_clean());
    // 11·12/2 comparator stages + setup: well under 10·log² n.
    assert!(result.metrics.rounds < 10 * 11 * 11);
    // Ranks form a permutation.
    let mut ranks: Vec<usize> =
        result.outputs.iter().map(|(_, r)| *r).collect();
    ranks.sort_unstable();
    assert!(ranks.iter().enumerate().all(|(i, &r)| i == r));
}
