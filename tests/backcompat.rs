//! Back-compat: every deprecated `realize_*` wrapper must produce
//! **bit-identical** transcripts and metrics to its `Realization` builder
//! equivalent — one parameterized differential over the whole legacy
//! surface. (The wrappers are thin shims over the same engine rooms the
//! builder drives, so any divergence here means a shim rotted.)

#![allow(deprecated)]

use distributed_graph_realizations::ncc::event::semantic_stream;
use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{connectivity, realization, trees, Engine, Kt0};

/// The metrics both paths must agree on, bit for bit.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, usize, usize) {
    (
        m.rounds,
        m.messages,
        m.words,
        m.max_sent_per_round,
        m.max_received_per_round,
    )
}

/// An overlay edge list plus the metrics both paths must agree on.
type Transcript = (Vec<(NodeId, NodeId)>, RunMetrics);

struct Case {
    name: &'static str,
    legacy: fn(&[usize], u64) -> Transcript,
    builder: fn(&[usize], u64) -> Transcript,
}

fn degrees_out(out: &DriverOutput) -> Transcript {
    let r = out.expect_realized();
    (r.graph.edge_list(), r.metrics.clone())
}

fn build(w: Workload, seed: u64, engine: Engine) -> Realized {
    Realization::new(w).seed(seed).engine(engine).run().unwrap()
}

#[test]
fn deprecated_wrappers_match_builder_equivalents() {
    let cases = [
        Case {
            name: "realize_implicit",
            legacy: |d, s| degrees_out(&realization::realize_implicit(d, Config::ncc0(s)).unwrap()),
            builder: |d, s| {
                degrees_out(build(Workload::Implicit(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_implicit_batched",
            legacy: |d, s| {
                degrees_out(&realization::realize_implicit_batched(d, Config::ncc0(s)).unwrap())
            },
            builder: |d, s| {
                degrees_out(build(Workload::Implicit(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
        Case {
            name: "realize_approx",
            legacy: |d, s| degrees_out(&realization::realize_approx(d, Config::ncc0(s)).unwrap()),
            builder: |d, s| {
                degrees_out(build(Workload::Envelope(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_approx_batched",
            legacy: |d, s| {
                degrees_out(&realization::realize_approx_batched(d, Config::ncc0(s)).unwrap())
            },
            builder: |d, s| {
                degrees_out(build(Workload::Envelope(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
        Case {
            name: "realize_explicit",
            legacy: |d, s| {
                degrees_out(
                    &realization::realize_explicit(d, Config::ncc0(s).with_queueing()).unwrap(),
                )
            },
            builder: |d, s| {
                degrees_out(build(Workload::Explicit(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_explicit_batched",
            legacy: |d, s| {
                degrees_out(
                    &realization::realize_explicit_batched(d, Config::ncc0(s).with_queueing())
                        .unwrap(),
                )
            },
            builder: |d, s| {
                degrees_out(build(Workload::Explicit(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
    ];
    let degrees = vec![3usize, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1];
    for case in &cases {
        for seed in [3u64, 19] {
            let (le, lm) = (case.legacy)(&degrees, seed);
            let (be, bm) = (case.builder)(&degrees, seed);
            assert_eq!(le, be, "{}: overlays diverge (seed {seed})", case.name);
            assert_eq!(
                fingerprint(&lm),
                fingerprint(&bm),
                "{}: transcripts diverge (seed {seed})",
                case.name
            );
        }
    }
}

#[test]
fn deprecated_masked_and_prefix_wrappers_match() {
    let degrees = vec![2usize, 1, 1, 0, 0, 0];
    let mask = vec![true, true, true, false, false, false];
    for seed in [5u64, 23] {
        let legacy = realization::realize_masked_batched(
            &degrees,
            &mask,
            Config::ncc0(seed),
            realization::distributed::proto::Flavor::Envelope,
        )
        .unwrap();
        let built = Realization::new(Workload::Envelope(degrees.clone()))
            .mask(mask.clone())
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(
            degrees_out(&legacy),
            degrees_out(built.degrees()),
            "realize_masked_batched diverges (seed {seed})"
        );

        let legacy_prefix = realization::realize_prefix_batched(
            &degrees,
            3,
            Config::ncc0(seed),
            realization::distributed::proto::Flavor::Envelope,
        )
        .unwrap();
        assert_eq!(
            degrees_out(&legacy_prefix),
            degrees_out(built.degrees()),
            "realize_prefix_batched diverges (seed {seed})"
        );
    }
}

#[test]
fn deprecated_tree_wrappers_match() {
    let degrees = vec![3usize, 3, 2, 2, 1, 1, 1, 1];
    for (engine, legacy) in [
        (
            Engine::Threaded,
            trees::realize_tree(&degrees, Config::ncc0(9), TreeAlgo::Greedy).unwrap(),
        ),
        (
            Engine::Batched,
            trees::realize_tree_batched(&degrees, Config::ncc0(9), TreeAlgo::Greedy).unwrap(),
        ),
    ] {
        let built = build(
            Workload::Tree {
                degrees: degrees.clone(),
                algo: TreeAlgo::Greedy,
            },
            9,
            engine,
        );
        let (l, b) = (legacy.expect_realized(), built.tree().expect_realized());
        assert_eq!(l.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&l.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
}

#[test]
fn deprecated_threshold_wrappers_match() {
    let rho = vec![3usize, 2, 2, 2, 1, 1, 1];
    let inst = ThresholdInstance::new(rho.clone());
    // NCC1 star, both engines.
    for (engine, legacy) in [
        (
            Engine::Threaded,
            connectivity::realize_ncc1(&inst, Config::ncc1(12)).unwrap(),
        ),
        (
            Engine::Batched,
            connectivity::realize_ncc1_batched(&inst, Config::ncc1(12)).unwrap(),
        ),
    ] {
        let built = build(Workload::Ncc1(rho.clone()), 12, engine);
        let b = built.threshold();
        assert_eq!(legacy.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&legacy.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
    // Algorithm 6 (pipeline phase 1), both engines.
    for (engine, legacy) in [
        (
            Engine::Threaded,
            connectivity::realize_ncc0(&inst, Config::ncc0(12).with_queueing()).unwrap(),
        ),
        (
            Engine::Batched,
            connectivity::realize_ncc0_batched(&inst, Config::ncc0(12).with_queueing()).unwrap(),
        ),
    ] {
        let built = build(Workload::Ncc0Threshold(rho.clone()), 12, engine);
        let b = built.threshold();
        assert_eq!(legacy.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&legacy.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
    // Paper-exact phase 1 in isolation.
    let legacy = connectivity::realize_prefix_envelope_batched(&inst, Config::ncc0(12)).unwrap();
    let built = build(Workload::PrefixEnvelope(rho), 12, Engine::Batched);
    assert_eq!(
        degrees_out(&legacy),
        degrees_out(built.degrees()),
        "realize_prefix_envelope_batched diverges"
    );
}

/// Records the event stream of one builder run.
fn record(workload: Workload, seed: u64, engine: Engine, workers: usize) -> Vec<RunEvent> {
    let recording = Recording::new();
    Realization::new(workload)
        .seed(seed)
        .engine(engine)
        .workers(workers)
        .observe(recording.clone())
        .run()
        .unwrap();
    recording.events()
}

/// The event-stream differential: wherever the two engines are held to
/// bit-identical transcripts, their event streams must be semantically
/// identical too — the transcript guarantee extended to events — and the
/// batched stream must be bit-identical across worker counts for every
/// workload family.
///
/// The NCC1 star and NCC0 pipeline run *direct-style* oracle twins on
/// the threaded engine, which are overlay-identical but not
/// transcript-identical to the batched step machines, so those two
/// families are held to the worker-count invariance only.
#[test]
fn event_streams_bit_identical_across_engines_and_worker_counts() {
    let transcript_identical: Vec<(&str, Workload)> = vec![
        ("implicit", Workload::Implicit(vec![3, 2, 2, 2, 1, 1, 1])),
        ("explicit", Workload::Explicit(vec![1, 1, 2, 2])),
        (
            "tree",
            Workload::Tree {
                degrees: vec![3, 3, 2, 2, 1, 1, 1, 1],
                algo: TreeAlgo::Greedy,
            },
        ),
        ("ncc0-exact", Workload::Ncc0Exact(vec![3, 2, 2, 2, 1, 1, 1])),
        ("prefix", Workload::PrefixEnvelope(vec![2, 2, 1, 1, 1])),
    ];
    let overlay_identical: Vec<(&str, Workload)> = vec![
        ("ncc1", Workload::Ncc1(vec![2, 2, 1, 1, 1])),
        ("ncc0", Workload::Ncc0Threshold(vec![2, 2, 1, 1, 1])),
    ];
    for (name, workload) in transcript_identical.iter().chain(&overlay_identical) {
        let batched = record(workload.clone(), 12, Engine::Batched, 1);
        assert!(
            batched
                .iter()
                .any(|e| matches!(e, RunEvent::RoundCompleted { .. })),
            "{name}: stream must narrate rounds"
        );
        for workers in [2, 4] {
            assert_eq!(
                batched,
                record(workload.clone(), 12, Engine::Batched, workers),
                "{name}: batched stream diverges at {workers} workers"
            );
        }
    }
    for (name, workload) in &transcript_identical {
        let batched = record(workload.clone(), 12, Engine::Batched, 1);
        let threaded = record(workload.clone(), 12, Engine::Threaded, 1);
        assert_eq!(
            semantic_stream(&batched),
            semantic_stream(&threaded),
            "{name}: semantic event streams diverge across engines"
        );
    }
}

/// The composed Algorithm 6 narrates its data-dependent phases: both
/// engines emit the same `PhaseChange` sequence starting at round 0, and
/// the resulting `RunMetrics::phase_rounds` breakdown is identical and
/// sums to the total round count.
#[test]
fn ncc0_exact_phase_events_agree_across_engines() {
    let rho = vec![3usize, 2, 2, 2, 1, 1, 1];
    let run = |engine: Engine| {
        let recording = Recording::new();
        let out = Realization::new(Workload::Ncc0Exact(rho.clone()))
            .seed(12)
            .engine(engine)
            .tracking(Kt0::Untracked)
            .observe(recording.clone())
            .run()
            .unwrap();
        (out, recording.events())
    };
    let (batched_out, batched_events) = run(Engine::Batched);
    let (threaded_out, threaded_events) = run(Engine::Threaded);
    let phases = |events: &[RunEvent]| -> Vec<(u64, &'static str)> {
        events
            .iter()
            .filter_map(|e| match e {
                RunEvent::PhaseChange { round, phase } => Some((*round, *phase)),
                _ => None,
            })
            .collect()
    };
    let batched_phases = phases(&batched_events);
    assert_eq!(batched_phases, phases(&threaded_events));
    assert_eq!(
        batched_phases.first(),
        Some(&(0, "setup")),
        "{batched_phases:?}"
    );
    assert!(
        batched_phases.iter().any(|&(_, p)| p == "phase1")
            && batched_phases.iter().any(|&(_, p)| p == "phase2"),
        "{batched_phases:?}"
    );
    let breakdown = &batched_out.metrics().phase_rounds;
    assert_eq!(breakdown, &threaded_out.metrics().phase_rounds);
    assert_eq!(
        breakdown.iter().map(|p| p.rounds).sum::<u64>(),
        batched_out.metrics().rounds,
        "phase breakdown must sum to the total round count: {breakdown:?}"
    );
    // Workloads that never mark phases have an empty breakdown.
    let plain = Realization::new(Workload::Implicit(vec![2, 2, 1, 1]))
        .seed(7)
        .run()
        .unwrap();
    assert!(plain.metrics().phase_rounds.is_empty());
}
