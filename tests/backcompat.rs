//! Back-compat: every deprecated `realize_*` wrapper must produce
//! **bit-identical** transcripts and metrics to its `Realization` builder
//! equivalent — one parameterized differential over the whole legacy
//! surface. (The wrappers are thin shims over the same engine rooms the
//! builder drives, so any divergence here means a shim rotted.)

#![allow(deprecated)]

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{connectivity, realization, trees, Engine};

/// The metrics both paths must agree on, bit for bit.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, usize, usize) {
    (
        m.rounds,
        m.messages,
        m.words,
        m.max_sent_per_round,
        m.max_received_per_round,
    )
}

/// An overlay edge list plus the metrics both paths must agree on.
type Transcript = (Vec<(NodeId, NodeId)>, RunMetrics);

struct Case {
    name: &'static str,
    legacy: fn(&[usize], u64) -> Transcript,
    builder: fn(&[usize], u64) -> Transcript,
}

fn degrees_out(out: &DriverOutput) -> Transcript {
    let r = out.expect_realized();
    (r.graph.edge_list(), r.metrics.clone())
}

fn build(w: Workload, seed: u64, engine: Engine) -> Realized {
    Realization::new(w).seed(seed).engine(engine).run().unwrap()
}

#[test]
fn deprecated_wrappers_match_builder_equivalents() {
    let cases = [
        Case {
            name: "realize_implicit",
            legacy: |d, s| degrees_out(&realization::realize_implicit(d, Config::ncc0(s)).unwrap()),
            builder: |d, s| {
                degrees_out(build(Workload::Implicit(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_implicit_batched",
            legacy: |d, s| {
                degrees_out(&realization::realize_implicit_batched(d, Config::ncc0(s)).unwrap())
            },
            builder: |d, s| {
                degrees_out(build(Workload::Implicit(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
        Case {
            name: "realize_approx",
            legacy: |d, s| degrees_out(&realization::realize_approx(d, Config::ncc0(s)).unwrap()),
            builder: |d, s| {
                degrees_out(build(Workload::Envelope(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_approx_batched",
            legacy: |d, s| {
                degrees_out(&realization::realize_approx_batched(d, Config::ncc0(s)).unwrap())
            },
            builder: |d, s| {
                degrees_out(build(Workload::Envelope(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
        Case {
            name: "realize_explicit",
            legacy: |d, s| {
                degrees_out(
                    &realization::realize_explicit(d, Config::ncc0(s).with_queueing()).unwrap(),
                )
            },
            builder: |d, s| {
                degrees_out(build(Workload::Explicit(d.to_vec()), s, Engine::Threaded).degrees())
            },
        },
        Case {
            name: "realize_explicit_batched",
            legacy: |d, s| {
                degrees_out(
                    &realization::realize_explicit_batched(d, Config::ncc0(s).with_queueing())
                        .unwrap(),
                )
            },
            builder: |d, s| {
                degrees_out(build(Workload::Explicit(d.to_vec()), s, Engine::Batched).degrees())
            },
        },
    ];
    let degrees = vec![3usize, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1];
    for case in &cases {
        for seed in [3u64, 19] {
            let (le, lm) = (case.legacy)(&degrees, seed);
            let (be, bm) = (case.builder)(&degrees, seed);
            assert_eq!(le, be, "{}: overlays diverge (seed {seed})", case.name);
            assert_eq!(
                fingerprint(&lm),
                fingerprint(&bm),
                "{}: transcripts diverge (seed {seed})",
                case.name
            );
        }
    }
}

#[test]
fn deprecated_masked_and_prefix_wrappers_match() {
    let degrees = vec![2usize, 1, 1, 0, 0, 0];
    let mask = vec![true, true, true, false, false, false];
    for seed in [5u64, 23] {
        let legacy = realization::realize_masked_batched(
            &degrees,
            &mask,
            Config::ncc0(seed),
            realization::distributed::proto::Flavor::Envelope,
        )
        .unwrap();
        let built = Realization::new(Workload::Envelope(degrees.clone()))
            .mask(mask.clone())
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(
            degrees_out(&legacy),
            degrees_out(built.degrees()),
            "realize_masked_batched diverges (seed {seed})"
        );

        let legacy_prefix = realization::realize_prefix_batched(
            &degrees,
            3,
            Config::ncc0(seed),
            realization::distributed::proto::Flavor::Envelope,
        )
        .unwrap();
        assert_eq!(
            degrees_out(&legacy_prefix),
            degrees_out(built.degrees()),
            "realize_prefix_batched diverges (seed {seed})"
        );
    }
}

#[test]
fn deprecated_tree_wrappers_match() {
    let degrees = vec![3usize, 3, 2, 2, 1, 1, 1, 1];
    for (engine, legacy) in [
        (
            Engine::Threaded,
            trees::realize_tree(&degrees, Config::ncc0(9), TreeAlgo::Greedy).unwrap(),
        ),
        (
            Engine::Batched,
            trees::realize_tree_batched(&degrees, Config::ncc0(9), TreeAlgo::Greedy).unwrap(),
        ),
    ] {
        let built = build(
            Workload::Tree {
                degrees: degrees.clone(),
                algo: TreeAlgo::Greedy,
            },
            9,
            engine,
        );
        let (l, b) = (legacy.expect_realized(), built.tree().expect_realized());
        assert_eq!(l.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&l.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
}

#[test]
fn deprecated_threshold_wrappers_match() {
    let rho = vec![3usize, 2, 2, 2, 1, 1, 1];
    let inst = ThresholdInstance::new(rho.clone());
    // NCC1 star, both engines.
    for (engine, legacy) in [
        (
            Engine::Threaded,
            connectivity::realize_ncc1(&inst, Config::ncc1(12)).unwrap(),
        ),
        (
            Engine::Batched,
            connectivity::realize_ncc1_batched(&inst, Config::ncc1(12)).unwrap(),
        ),
    ] {
        let built = build(Workload::Ncc1(rho.clone()), 12, engine);
        let b = built.threshold();
        assert_eq!(legacy.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&legacy.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
    // Algorithm 6 (pipeline phase 1), both engines.
    for (engine, legacy) in [
        (
            Engine::Threaded,
            connectivity::realize_ncc0(&inst, Config::ncc0(12).with_queueing()).unwrap(),
        ),
        (
            Engine::Batched,
            connectivity::realize_ncc0_batched(&inst, Config::ncc0(12).with_queueing()).unwrap(),
        ),
    ] {
        let built = build(Workload::Ncc0Threshold(rho.clone()), 12, engine);
        let b = built.threshold();
        assert_eq!(legacy.graph.edge_list(), b.graph.edge_list(), "{engine:?}");
        assert_eq!(
            fingerprint(&legacy.metrics),
            fingerprint(&b.metrics),
            "{engine:?}"
        );
    }
    // Paper-exact phase 1 in isolation.
    let legacy = connectivity::realize_prefix_envelope_batched(&inst, Config::ncc0(12)).unwrap();
    let built = build(Workload::PrefixEnvelope(rho), 12, Engine::Batched);
    assert_eq!(
        degrees_out(&legacy),
        degrees_out(built.degrees()),
        "realize_prefix_envelope_batched diverges"
    );
}
