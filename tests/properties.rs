//! Property-based tests (proptest) on the workspace invariants.
//!
//! Simulated-network properties use modest `n` and case counts to keep
//! runtimes sane; the sequential properties run at full throttle.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{graphgen, realization, trees};
use proptest::prelude::*;

proptest! {
    /// Erdős–Gallai and Havel–Hakimi must agree on arbitrary sequences.
    #[test]
    fn eg_and_hh_agree(degrees in prop::collection::vec(0usize..12, 0..40)) {
        let seq = DegreeSequence::new(degrees.clone());
        let eg = realization::erdos_gallai::is_graphic(&degrees);
        let hh = realization::havel_hakimi::realize(&seq).is_ok();
        prop_assert_eq!(eg, hh, "disagree on {:?}", degrees);
    }

    /// Havel–Hakimi outputs realize their input exactly, as simple graphs.
    #[test]
    fn hh_realizations_are_exact(degrees in prop::collection::vec(0usize..10, 1..30)) {
        let seq = DegreeSequence::new(degrees.clone());
        if let Ok(r) = realization::havel_hakimi::realize(&seq) {
            prop_assert_eq!(&r.degrees(seq.len()), seq.degrees());
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &r.edges {
                prop_assert_ne!(u, v);
                prop_assert!(seen.insert((u.min(v), u.max(v))));
            }
        }
    }

    /// Graphic-sequence repair always lands on a graphic sequence and
    /// never increases any degree.
    #[test]
    fn repair_is_sound(degrees in prop::collection::vec(0usize..64, 1..50)) {
        let mut repaired = degrees.clone();
        graphgen::repair_to_graphic(&mut repaired);
        prop_assert!(realization::erdos_gallai::is_graphic(&repaired));
        for (a, b) in degrees.iter().zip(&repaired) {
            prop_assert!(b <= a || *b < repaired.len());
        }
    }

    /// The sequential greedy tree realizes exactly and is never beaten by
    /// the brute-force minimum diameter (n ≤ 7 ⇒ it *equals* it).
    #[test]
    fn greedy_tree_is_minimal(extra in prop::collection::vec(0usize..5, 5)) {
        // Build a tree-realizable sequence on n = 7 from increments.
        let n = 7;
        let mut degrees = vec![1usize; n];
        let mut budget = n - 2;
        for (i, &e) in extra.iter().enumerate() {
            let take = e.min(budget);
            degrees[i % n] += take;
            budget -= take;
        }
        degrees[0] += budget;
        let seq = DegreeSequence::new(degrees.clone());
        prop_assume!(seq.is_tree_realizable());
        let g = trees::greedy::greedy_tree(&seq).unwrap();
        let got = trees::greedy::diameter_of(&g, n);
        let want = trees::greedy::min_diameter_brute(&seq).unwrap();
        prop_assert_eq!(got, want, "greedy not minimal on {:?}", degrees);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Distributed implicit realization matches its input exactly on
    /// random graphic sequences (full simulation, strict KT0).
    #[test]
    fn distributed_realization_is_exact(seed in 0u64..500, n in 8usize..40) {
        let degrees = graphgen::random_graphic_sequence(n, n / 2, seed);
        let out = Realization::new(Workload::Implicit(degrees))
            .seed(seed)
            .run()
            .unwrap();
        let r = out.degrees().expect_realized();
        realization::verify::degrees_match(&r.graph, &r.requested).unwrap();
        prop_assert!(r.metrics.is_clean());
        prop_assert_eq!(r.duplicate_edges, 0);
    }

    /// The distributed envelope realization satisfies both Theorem 13
    /// invariants on arbitrary (possibly non-graphic) inputs.
    #[test]
    fn distributed_envelope_invariants(
        degrees in prop::collection::vec(0usize..10, 4..24),
        seed in 0u64..100,
    ) {
        let n = degrees.len();
        prop_assume!(degrees.iter().all(|&d| d < n));
        let out = Realization::new(Workload::Envelope(degrees.clone()))
            .seed(seed)
            .run()
            .unwrap();
        let r = out.degrees().expect_realized();
        let mut envelope_sum = 0;
        for (i, &id) in r.path_order.iter().enumerate() {
            let d_prime = r.multi_degrees[&id];
            prop_assert!(d_prime >= degrees[i]);
            envelope_sum += d_prime;
        }
        let sum: usize = degrees.iter().sum();
        prop_assert!(envelope_sum <= 2 * sum);
        prop_assert!(r.metrics.is_clean());
    }

    /// Distributed greedy trees have brute-force-minimal diameter (n ≤ 8).
    #[test]
    fn distributed_greedy_tree_minimal(seed in 0u64..200, n in 3usize..8) {
        let degrees = graphgen::random_tree_sequence(n, seed);
        let out = Realization::new(Workload::Tree {
            degrees: degrees.clone(),
            algo: TreeAlgo::Greedy,
        })
        .seed(seed)
        .run()
        .unwrap();
        let t = out.tree().expect_realized();
        let seq = DegreeSequence::new(degrees);
        let want = trees::greedy::min_diameter_brute(&seq).unwrap();
        prop_assert_eq!(t.diameter, want);
    }
}
