//! Model-compliance tests: the NCC constraints (capacities, KT0
//! addressing, message sizes) hold across every algorithm in the
//! workspace. These run under `CapacityPolicy::Strict` wherever the
//! algorithm allows, and otherwise assert clean metrics after the fact.
//! Every driver is constructed through the `Realization` builder.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;
use distributed_graph_realizations::{graphgen, trees};

/// Capacity usage must stay within the enforced Θ(log n) budget — not
/// just "no violations" (Strict guarantees that) but visibly bounded.
#[test]
fn implicit_realization_respects_capacity_headroom() {
    let degrees = graphgen::near_regular_sequence(64, 6, 3);
    let out = Realization::new(Workload::Implicit(degrees))
        .seed(3)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert!(r.metrics.max_sent_per_round <= r.metrics.capacity);
    assert!(r.metrics.max_received_per_round <= r.metrics.capacity);
    assert_eq!(r.metrics.violations.total(), 0);
}

/// The KT0 knowledge tracker is on by default; a star sequence forces
/// maximal knowledge spread and must still be legal.
#[test]
fn star_realization_is_kt0_legal() {
    let n = 48;
    let mut degrees = vec![1usize; n];
    degrees[0] = n - 1;
    if (degrees.iter().sum::<usize>()) % 2 != 0 {
        degrees[1] = 2;
        degrees[2] = 2;
    }
    graphgen::repair_to_graphic(&mut degrees);
    let out = Realization::new(Workload::Implicit(degrees))
        .tracking(Kt0::Tracked)
        .seed(8)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert!(r.metrics.is_clean());
    // Lower-bound intuition (Theorem 20): realizing a heavy node forces
    // substantial knowledge to accumulate somewhere.
    assert!(r.metrics.max_knowledge >= 4);
}

/// Explicit realization under queueing must deliver everything: an
/// undelivered message means some node stopped listening too early.
#[test]
fn explicit_realization_drains_all_queues() {
    let degrees = graphgen::star_heavy_sequence(56, 1, 2, 4);
    let out = Realization::new(Workload::Explicit(degrees))
        .seed(4)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert_eq!(r.metrics.undelivered, 0);
    assert!(r.metrics.max_received_per_round <= r.metrics.capacity);
}

/// Both tree algorithms run fully strict.
#[test]
fn tree_algorithms_run_strict() {
    let degrees = graphgen::random_tree_sequence(72, 6);
    for algo in [trees::TreeAlgo::Chain, trees::TreeAlgo::Greedy] {
        let out = Realization::new(Workload::Tree {
            degrees: degrees.clone(),
            algo,
        })
        .policy(CapacityPolicy::Strict)
        .seed(6)
        .run()
        .unwrap();
        let t = out.tree().expect_realized();
        assert!(t.metrics.is_clean(), "{algo:?}");
    }
}

/// Algorithm 6's phases must never overflow receive capacity at delivery
/// time (the queue policy paces, but delivery stays within cap) — both
/// the default pipeline variant and the composed paper-exact variant.
#[test]
fn connectivity_ncc0_delivery_is_paced() {
    let rho = graphgen::uniform_thresholds(40, 1, 6, 7);
    for workload in [
        Workload::Ncc0Threshold(rho.clone()),
        Workload::Ncc0Exact(rho.clone()),
    ] {
        let out = Realization::new(workload).seed(7).run().unwrap();
        let out = out.threshold();
        assert!(out.metrics.max_received_per_round <= out.metrics.capacity);
        assert_eq!(out.metrics.undelivered, 0);
        assert_eq!(out.metrics.violations.total(), 0);
    }
}

/// Message volume sanity: the implicit realization is message-frugal —
/// within a polylog factor of one message per edge per phase.
#[test]
fn message_volume_is_bounded() {
    let n = 64;
    let degrees = graphgen::near_regular_sequence(n, 4, 9);
    let out = Realization::new(Workload::Implicit(degrees))
        .seed(9)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    let phases = r.phases.max(1);
    let per_phase = r.metrics.messages / phases;
    // Each phase sorts (O(n log² n) messages) plus broadcasts; allow a
    // generous constant.
    let budget = (n as u64) * 64 * 8;
    assert!(
        per_phase < budget,
        "phase message volume {per_phase} exceeds {budget}"
    );
}

/// The paper's remark: every NCC0 algorithm runs unchanged in NCC1 (the
/// builder's model override).
#[test]
fn ncc0_algorithms_run_in_ncc1() {
    let degrees = graphgen::random_graphic_sequence(32, 6, 10);
    let out = Realization::new(Workload::Implicit(degrees))
        .model(Model::Ncc1)
        .seed(10)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).unwrap();
}

/// The randomized sorting backend is KT0-legal: a tracked run stays
/// clean (every address it uses was legitimately learned).
#[test]
fn randomized_sort_is_kt0_legal() {
    let degrees = graphgen::near_regular_sequence(1200, 4, 11);
    let out = Realization::new(Workload::Implicit(degrees))
        .sort(SortBackend::RandomizedLogN { seed: 2 })
        .policy(CapacityPolicy::Queue)
        .tracking(Kt0::Tracked)
        .seed(11)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert!(r.metrics.is_clean());
    assert_eq!(r.metrics.violations.unknown_addressee, 0);
    assert_eq!(r.metrics.violations.unknown_carried, 0);
}
