//! Cross-crate integration tests: full realization pipelines on simulated
//! NCC networks, with strict capacity enforcement and KT0 knowledge
//! tracking — every green run here is a machine-checked proof that the
//! algorithms are legal NCC0 protocols on that instance. Every driver is
//! constructed through the `Realization` builder.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;
use distributed_graph_realizations::{connectivity, graph, graphgen, realization, trees};

#[test]
fn implicit_realization_of_random_graphic_sequences() {
    for (n, seed) in [(16, 1u64), (48, 2), (96, 3), (130, 4)] {
        let degrees = graphgen::random_graphic_sequence(n, n / 3, seed);
        let out = Realization::new(Workload::Implicit(degrees.clone()))
            .seed(seed)
            .run()
            .unwrap();
        let r = out.degrees().expect_realized();
        verify::degrees_match(&r.graph, &r.requested).unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(r.metrics.is_clean(), "n={n}: model violations");
        assert_eq!(r.duplicate_edges, 0, "n={n}");
        // Lemma 10 phase bound (generous constant).
        let seq = DegreeSequence::new(degrees);
        let bound = realization::distributed::implicit::phase_bound(&seq);
        assert!(
            (r.phases as f64) <= 2.0 * bound + 4.0,
            "n={n}: {} phases vs bound {bound}",
            r.phases
        );
    }
}

#[test]
fn explicit_realization_is_symmetric_and_exact() {
    let degrees = graphgen::power_law_sequence(80, 20, 2.5, 5);
    let out = Realization::new(Workload::Explicit(degrees))
        .seed(5)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).unwrap();
    // Both endpoints of every edge list each other.
    for (u, v) in r.graph.edge_list() {
        assert!(r.explicit_neighbors[&u].contains(&v));
        assert!(r.explicit_neighbors[&v].contains(&u));
    }
    assert_eq!(r.metrics.undelivered, 0);
}

#[test]
fn non_graphic_sequences_get_envelopes() {
    for seed in [11u64, 12, 13] {
        let n = 40;
        // Start from a graphic sequence and break it (odd sum).
        let mut degrees = graphgen::random_graphic_sequence(n, 10, seed);
        degrees[0] += 1;
        let sum: usize = degrees.iter().sum();
        if sum.is_multiple_of(2) {
            degrees[1] += 1;
        }
        let out = Realization::new(Workload::Envelope(degrees.clone()))
            .seed(seed)
            .run()
            .unwrap();
        let r = out.degrees().expect_realized();
        let mut envelope_sum = 0;
        for (i, &id) in r.path_order.iter().enumerate() {
            let d_prime = r.multi_degrees[&id];
            assert!(d_prime >= degrees[i], "envelope below request");
            envelope_sum += d_prime;
        }
        let sum: usize = degrees.iter().sum();
        assert!(envelope_sum <= 2 * sum, "Theorem 13 bound violated");
    }
}

#[test]
fn trees_realize_and_greedy_minimizes_diameter() {
    for (n, seed) in [(32, 21u64), (64, 22), (100, 23)] {
        let degrees = graphgen::random_tree_sequence(n, seed);
        let tree = |algo| {
            Realization::new(Workload::Tree {
                degrees: degrees.clone(),
                algo,
            })
            .seed(seed)
            .run()
            .unwrap()
        };
        let (chain, greedy) = (tree(TreeAlgo::Chain), tree(TreeAlgo::Greedy));
        let (c, g) = (
            chain.tree().expect_realized(),
            greedy.tree().expect_realized(),
        );
        assert!(c.graph.is_tree() && g.graph.is_tree(), "n={n}");
        assert!(g.diameter <= c.diameter, "n={n}: greedy beaten by chain");
        // Theorem 16: matches the sequential minimum-diameter tree.
        let seq = DegreeSequence::new(degrees.clone());
        let reference = trees::greedy::greedy_tree(&seq).unwrap();
        assert_eq!(
            g.diameter,
            trees::greedy::diameter_of(&reference, n),
            "n={n}"
        );
        assert!(c.metrics.is_clean() && g.metrics.is_clean());
    }
}

#[test]
fn connectivity_thresholds_certified_by_max_flow() {
    let rho = graphgen::tiered_thresholds(48, 4, 6);
    let inst = connectivity::ThresholdInstance::new(rho.clone());
    let out = Realization::new(Workload::Ncc0Threshold(rho))
        .seed(31)
        .run()
        .unwrap();
    assert!(
        out.threshold().report.satisfied,
        "{:?}",
        out.threshold().report
    );
    assert!(out.threshold().graph.edge_count() <= 2 * connectivity::edge_lower_bound(&inst));
}

#[test]
fn composed_paper_exact_alg6_certifies_too() {
    let rho = graphgen::tiered_thresholds(48, 4, 6);
    let inst = connectivity::ThresholdInstance::new(rho.clone());
    let out = Realization::new(Workload::Ncc0Exact(rho))
        .seed(31)
        .run()
        .unwrap();
    assert!(
        out.threshold().report.satisfied,
        "{:?}",
        out.threshold().report
    );
    assert!(out.threshold().graph.edge_count() <= 2 * connectivity::edge_lower_bound(&inst));
}

#[test]
fn ncc1_connectivity_in_constant_rounds() {
    let rho = graphgen::uniform_thresholds(40, 2, 8, 41);
    let out = Realization::new(Workload::Ncc1(rho))
        .seed(41)
        .run()
        .unwrap();
    let out = out.threshold();
    assert!(out.report.satisfied);
    // O~(1): far below any Δ-dependent bill.
    assert!(out.metrics.rounds < 120, "rounds = {}", out.metrics.rounds);
}

#[test]
fn degree_realization_connects_what_it_should() {
    // A connected target: a 4-regular sequence realizes to a graph whose
    // big component covers most nodes (not guaranteed connected, but the
    // handshake totals must always match).
    let degrees = vec![4usize; 32];
    let out = Realization::new(Workload::Implicit(degrees))
        .seed(51)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    assert_eq!(r.graph.edge_count(), 64);
    let comps = graph::connected_components(&r.graph);
    let biggest = comps.iter().map(Vec::len).max().unwrap();
    assert!(biggest >= 16, "suspiciously fragmented: {biggest}");
}

#[test]
fn runs_are_deterministic_per_seed() {
    let degrees = graphgen::random_graphic_sequence(40, 8, 9);
    let run = |seed| {
        Realization::new(Workload::Implicit(degrees.clone()))
            .seed(seed)
            .run()
            .unwrap()
    };
    let (a, b) = (run(77), run(77));
    let (ra, rb) = (a.degrees().expect_realized(), b.degrees().expect_realized());
    assert_eq!(ra.graph.edge_list(), rb.graph.edge_list());
    assert_eq!(ra.metrics.rounds, rb.metrics.rounds);
    // A different seed gives a different network (IDs differ).
    let c = run(78);
    assert_ne!(
        ra.graph.edge_list(),
        c.degrees().expect_realized().graph.edge_list()
    );
}

#[test]
fn randomized_sort_backend_realizes_degrees_at_scale() {
    // The Theorem 3 randomized backend drives a full realization: same
    // overlay guarantees, queueing policy, KT0 tracking on.
    let n = 2048;
    let degrees = graphgen::near_regular_sequence(n, 4, 7);
    let out = Realization::new(Workload::Implicit(degrees))
        .sort(SortBackend::RandomizedLogN { seed: 3 })
        .policy(CapacityPolicy::Queue)
        .seed(7)
        .run()
        .unwrap();
    let r = out.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).unwrap();
    assert!(r.metrics.is_clean());
}
