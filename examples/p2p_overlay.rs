//! P2P overlay construction — the paper's motivating scenario.
//!
//! ```sh
//! cargo run --release --example p2p_overlay
//! ```
//!
//! 256 peers want a heavy-tailed overlay (a few well-provisioned
//! super-peers, many light clients — a power-law degree profile). We
//! build it *explicitly* (both endpoints of every link know it, Theorem
//! 12), then inspect the overlay a downstream system would actually use:
//! degree compliance, connectivity, diameter.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;
use distributed_graph_realizations::{graph, graphgen};

fn main() {
    let n = 256;
    // Power-law-ish degrees, exponent ~2.3, hub cap 48, repaired to a
    // graphic sequence.
    let degrees = graphgen::power_law_sequence(n, 48, 2.3, 7);
    let seq = DegreeSequence::new(degrees.clone());
    println!(
        "n = {n}, Δ = {}, m = {}, graphic: {}",
        seq.max_degree(),
        seq.edge_count(),
        seq.is_graphic()
    );

    // The explicit workload defaults to the queueing policy its
    // staggered edge hand-off needs.
    let out = Realization::new(Workload::Explicit(degrees.clone()))
        .seed(99)
        .run()
        .expect("simulation failed");
    let r = out.degrees().expect_realized();

    verify::degrees_match(&r.graph, &r.requested).expect("degree mismatch");
    println!(
        "explicit overlay built: {} edges in {} rounds ({} messages)",
        r.graph.edge_count(),
        r.metrics.rounds,
        r.metrics.messages
    );

    // Every edge is known at both endpoints — check a random node's view.
    let some_hub = *r
        .requested
        .iter()
        .max_by_key(|(_, &d)| d)
        .map(|(id, _)| id)
        .unwrap();
    println!(
        "hub {} has {} links; it knows all of them: {}",
        some_hub,
        r.graph.degree_of(some_hub),
        r.explicit_neighbors[&some_hub].len() == r.graph.degree_of(some_hub)
    );

    // Overlay quality metrics a P2P system cares about.
    let components = graph::connected_components(&r.graph).len();
    println!("connected components: {components}");
    if components == 1 {
        let dia = graph::diameter(&r.graph).unwrap();
        println!("overlay diameter: {dia}");
    }
    let hist = degree_histogram(&degrees);
    println!("degree histogram (degree: count): {hist:?}");
}

fn degree_histogram(degrees: &[usize]) -> Vec<(usize, usize)> {
    let mut map = std::collections::BTreeMap::new();
    for &d in degrees {
        *map.entry(d).or_insert(0) += 1;
    }
    map.into_iter().collect()
}
