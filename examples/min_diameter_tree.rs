//! Tree realization: any tree vs. the minimum-diameter greedy tree.
//!
//! ```sh
//! cargo run --release --example min_diameter_tree
//! ```
//!
//! A multicast backbone wants low depth: given the same degree budget per
//! node, Algorithm 4 (chain construction) and Algorithm 5 (greedy tree)
//! produce trees of very different diameters. We realize both on 128
//! nodes and compare against the sequential greedy baseline of [30].

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{graphgen, trees};
use trees::TreeAlgo;

fn main() {
    let n = 128;
    // A caterpillar-ish budget: a 40-node spine plus leaves — the shape
    // where the diameter gap is dramatic.
    let degrees = graphgen::caterpillar_tree_sequence(n, 40, 5);
    let seq = DegreeSequence::new(degrees.clone());
    assert!(seq.is_tree_realizable());
    println!(
        "n = {n}, Δ = {}, tree-realizable: {}",
        seq.max_degree(),
        seq.is_tree_realizable()
    );

    let chain = Realization::new(Workload::Tree {
        degrees: degrees.clone(),
        algo: TreeAlgo::Chain,
    })
    .seed(11)
    .run()
    .expect("simulation failed");
    let chain = chain.tree().expect_realized().clone();
    println!(
        "Algorithm 4 (chain):  diameter {} in {} rounds",
        chain.diameter, chain.metrics.rounds
    );

    let greedy = Realization::new(Workload::Tree {
        degrees: degrees.clone(),
        algo: TreeAlgo::Greedy,
    })
    .seed(11)
    .run()
    .expect("simulation failed");
    let greedy = greedy.tree().expect_realized().clone();
    println!(
        "Algorithm 5 (greedy): diameter {} in {} rounds",
        greedy.diameter, greedy.metrics.rounds
    );

    // Sequential reference: the greedy tree T_G of [30] is provably
    // minimum-diameter (Lemma 15); the distributed run must match it.
    let reference = trees::greedy::greedy_tree(&seq).unwrap();
    let ref_dia = trees::greedy::diameter_of(&reference, n);
    println!("sequential greedy T_G: diameter {ref_dia}");
    assert_eq!(greedy.diameter, ref_dia, "Theorem 16 violated");
    assert!(greedy.diameter <= chain.diameter);

    println!(
        "\ndiameter saved by the greedy construction: {} hops ({}x)",
        chain.diameter - greedy.diameter,
        chain.diameter as f64 / greedy.diameter.max(1) as f64
    );
}
