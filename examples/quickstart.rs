//! Quickstart: realize a degree sequence as a distributed overlay.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Eight peers boot knowing only their successor on a line (the NCC0
//! initial knowledge graph); each wants a specific number of overlay
//! links. Algorithm 3 builds the overlay in `O~(min{√m, Δ})` rounds, and
//! we verify the result exactly. Everything runs through the one
//! `Realization` builder.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;

fn main() {
    // One degree per node; node i of the knowledge path wants degrees[i]
    // neighbors. (3,2,2,2,2,2,2,1) sums to 16 => 8 edges.
    let degrees = vec![3, 2, 2, 2, 2, 2, 2, 1];

    println!("requested degrees: {degrees:?}");
    let seq = DegreeSequence::new(degrees.clone());
    println!(
        "Erdos-Gallai says graphic: {} (Δ = {}, m = {})",
        seq.is_graphic(),
        seq.max_degree(),
        seq.edge_count()
    );

    // Defaults are the strict NCC0 policy with KT0 knowledge tracking:
    // the run itself certifies that the algorithm is a legal NCC0
    // protocol.
    let out = Realization::new(Workload::Implicit(degrees))
        .seed(2026)
        .run()
        .expect("simulation failed");

    match out.degrees() {
        DriverOutput::Realized(r) => {
            println!("\nrealized {} edges:", r.graph.edge_count());
            for (u, v) in r.graph.edge_list() {
                println!("  {u} -- {v}");
            }
            verify::degrees_match(&r.graph, &r.requested).expect("degree mismatch");
            println!("\nall degrees match their requests ✓");
            println!(
                "rounds: {} | messages: {} | Algorithm 3 phases: {} | \
                 capacity/round: {} | model violations: {}",
                r.metrics.rounds,
                r.metrics.messages,
                r.phases,
                r.metrics.capacity,
                r.metrics.violations.total()
            );
        }
        DriverOutput::Unrealizable { .. } => {
            println!("the sequence is not graphic — no overlay exists");
        }
    }

    // The same pipeline refuses a non-graphic sequence.
    let bad = vec![3, 3, 1, 1];
    let out = Realization::new(Workload::Implicit(bad.clone()))
        .seed(2026)
        .run()
        .unwrap();
    println!(
        "\ncontrol: {bad:?} correctly refused: {}",
        out.degrees().is_unrealizable()
    );
}
