//! Chaos quickstart: the NCC₀ warm-up running under a seeded 1% message
//! drop, with the fault narration streaming to stderr.
//!
//! ```sh
//! cargo run --release --example chaos
//! ```
//!
//! A [`Scenario`] is a pre-compiled fault schedule the engine applies
//! between seal and delivery: here, every sealed message has a 1% chance
//! of being silently discarded (drawn from a per-round RNG derived from
//! the scenario seed, so the same seed always drops the same messages —
//! at any worker or shard count). The warm-up floods knowledge along the
//! path, so lost envelopes thin the traffic without stalling anyone: the
//! run completes in the same number of rounds, narrating each round's
//! injected faults through the [`ProgressSink`], and the engine's fault
//! counters reconcile exactly with what the narration reported.

use distributed_graph_realizations::ncc::{Config, EngineKind, Network, ProgressSink, Scenario};
use distributed_graph_realizations::primitives::proto::PathToClique;

fn main() {
    let n = 20_000;
    let scenario = Scenario::new(2020).drop_messages(0..=u64::MAX, 0.01);

    println!("warm-up on {n} nodes, dropping 1% of all sealed traffic:\n");
    let net = Network::new(n, Config::ncc0(42).with_scenario(scenario));
    let mut sink = ProgressSink::stderr(0);
    let result = net
        .run_protocol_on(
            EngineKind::Batched,
            None,
            Some(&mut sink),
            PathToClique::new,
        )
        .expect("the warm-up completes under drops — faults degrade traffic, not the engine");

    let stats = &result.engine;
    println!(
        "\ncompleted: {} rounds, {} messages delivered, {} dropped on the wire",
        result.metrics.rounds, result.metrics.messages, stats.faults_dropped
    );
    assert_eq!(result.outputs.len(), n, "every node still retires");
    assert!(stats.faults_dropped > 0, "the schedule fired");

    // Re-running the identical (run seed, scenario seed) pair replays the
    // identical faults: determinism holds under fire.
    let net = Network::new(
        n,
        Config::ncc0(42).with_scenario(Scenario::new(2020).drop_messages(0..=u64::MAX, 0.01)),
    );
    let replay = net.run_protocol(PathToClique::new).expect("replay");
    assert_eq!(replay.engine.faults_dropped, stats.faults_dropped);
    assert_eq!(replay.metrics, result.metrics);
    println!(
        "replay with the same seeds dropped the same {} messages",
        stats.faults_dropped
    );
}
