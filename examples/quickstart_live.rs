//! Quickstart, live edition: watch a realization run round by round.
//!
//! ```sh
//! cargo run --release --example quickstart_live
//! ```
//!
//! The plain `quickstart` example gets its answers after the fact; this
//! one drives the same builder through the **streaming session** API.
//! `run_streaming()` puts the engine on a worker thread that rendezvouses
//! with this loop on every event — the run advances exactly one round per
//! `next_round()` call, so a six-digit realization can be watched (or
//! paused, or inspected) mid-flight instead of post-hoc.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::realization::verify;

fn main() {
    // A four-digit implicit realization: big enough that the round loop
    // has something to narrate, small enough to finish in moments.
    let n = 4096;
    let degrees: Vec<usize> = (0..n).map(|i| 2 + i % 3).collect();
    let sum: usize = degrees.iter().sum();
    let degrees = {
        // Keep the sum even so the sequence stays graphic.
        let mut d = degrees;
        if sum % 2 == 1 {
            d[0] += 1;
        }
        d
    };

    println!("realizing {n} degrees, streaming one snapshot per round:\n");
    let mut session = Realization::new(Workload::Implicit(degrees))
        .seed(2026)
        .run_streaming()
        .expect("contradictory knobs");

    let mut last_live = n;
    while let Some(snapshot) = session.next_round() {
        // Print a line whenever the live population shrank noticeably,
        // plus every 64th round — a poor man's progress bar. (For
        // hands-off output, `.observe(ProgressSink::stderr(64))` does
        // this without the loop.)
        for event in &snapshot.events {
            if let RunEvent::Compaction { round, live } = event {
                println!("  round {round:>5}: engine compacted to {live} live slots");
            }
        }
        if snapshot.live * 10 <= last_live * 9 || snapshot.round % 64 == 0 {
            println!(
                "  round {:>5}: {:>6} messages delivered, {:>5} nodes still running",
                snapshot.round, snapshot.delivered, snapshot.live
            );
            last_live = snapshot.live;
        }
    }

    // The session hands back exactly what `run()` would have returned.
    let out = session.finish().expect("simulation failed");
    let r = out.degrees().expect_realized();
    verify::degrees_match(&r.graph, &r.requested).expect("degree mismatch");
    println!(
        "\nrealized {} edges in {} rounds ({} messages); overlay verified ✓",
        r.graph.edge_count(),
        r.metrics.rounds,
        r.metrics.messages
    );
}
