//! The price of ignorance: NCC1 vs NCC0 on the same threshold instance.
//!
//! ```sh
//! cargo run --release --example ncc1_vs_ncc0
//! ```
//!
//! When every peer already knows every address (NCC1 — think a tracker or
//! a published membership list), connectivity-threshold overlays cost
//! `O~(1)` rounds: find the most-demanding node, everyone wires to it
//! locally (Theorem 17). When peers start knowing only one neighbor
//! (NCC0), the same guarantees cost `O~(Δ)` rounds (Theorem 18). This
//! example measures the separation on identical workloads.

use distributed_graph_realizations::connectivity;
use distributed_graph_realizations::prelude::*;

fn main() {
    let n = 96;
    println!("n = {n}, uniform thresholds rho in [1, Δρ]\n");
    println!(
        "{:>4} | {:>11} | {:>11} | {:>8} | {:>9} | {:>9}",
        "Δρ", "NCC1 rounds", "NCC0 rounds", "ratio", "NCC1 e/LB", "NCC0 e/LB"
    );
    for dmax in [2usize, 4, 8, 16, 32, 64] {
        let rho = distributed_graph_realizations::graphgen::uniform_thresholds(n, 1, dmax, 7);
        let inst = connectivity::ThresholdInstance::new(rho);
        let lb = connectivity::edge_lower_bound(&inst) as f64;

        let fast = Realization::new(Workload::Ncc1(inst.rho.clone()))
            .seed(7)
            .run()
            .expect("NCC1 run failed");
        let slow = Realization::new(Workload::Ncc0Threshold(inst.rho.clone()))
            .seed(7)
            .run()
            .expect("NCC0 run failed");
        let (fast, slow) = (fast.threshold(), slow.threshold());
        assert!(fast.report.satisfied && slow.report.satisfied);

        println!(
            "{:>4} | {:>11} | {:>11} | {:>7.1}x | {:>9.2} | {:>9.2}",
            inst.max_rho(),
            fast.metrics.rounds,
            slow.metrics.rounds,
            slow.metrics.rounds as f64 / fast.metrics.rounds as f64,
            fast.graph.edge_count() as f64 / lb,
            slow.graph.edge_count() as f64 / lb,
        );
    }
    println!(
        "\nNCC1 rounds are Δ-independent (Theorem 17's O~(1)); NCC0 rounds \
         grow with Δ (Theorem 18's O~(Δ)).\nBoth stay within the 2x edge \
         bound, certified by max-flow on every run."
    );
}
