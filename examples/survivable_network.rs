//! Survivable network design via connectivity-threshold realization.
//!
//! ```sh
//! cargo run --release --example survivable_network
//! ```
//!
//! A tiered service: 4 core replicas need 6-edge-connectivity to each
//! other, 16 cache nodes need 3, and the remaining edge nodes need 1.
//! The **paper-exact** Algorithm 6 — phase 1 via the prefix envelope
//! recursion, composed with the phase-2 pipeline and explicitness acks —
//! builds an *explicit* overlay with at most twice the optimal number of
//! links; Dinic max-flow certifies every requirement, and we demonstrate
//! the survivability by deleting edges.

use distributed_graph_realizations::prelude::*;
use distributed_graph_realizations::{connectivity, graph};

fn main() {
    let n = 64;
    let rho = connectivity::ThresholdInstance::new(
        (0..n)
            .map(|i| {
                if i < 4 {
                    6
                } else if i < 20 {
                    3
                } else {
                    1
                }
            })
            .collect(),
    );
    println!(
        "n = {n}, Σρ = {}, edge lower bound ⌈Σρ/2⌉ = {}",
        rho.sum(),
        connectivity::edge_lower_bound(&rho)
    );

    let run = Realization::new(Workload::Ncc0Exact(rho.rho.clone()))
        .seed(31)
        .run()
        .expect("simulation failed");
    let out = run.threshold();
    println!(
        "built {} edges in {} rounds — within 2x of optimal: {}",
        out.graph.edge_count(),
        out.metrics.rounds,
        out.graph.edge_count() <= 2 * connectivity::edge_lower_bound(&rho)
    );
    println!(
        "max-flow certification: satisfied = {} ({} pairs checked)",
        out.report.satisfied, out.report.pairs_checked
    );
    assert!(out.report.satisfied);

    // Survivability demo: knock out 2 edges incident to a core replica
    // and show the cores still reach each other.
    let core: Vec<u64> = out
        .rho
        .iter()
        .filter(|(_, &r)| r == 6)
        .map(|(&id, _)| id)
        .collect();
    let (a, b) = (core[0], core[1]);
    let mut survivors: Vec<(u64, u64)> = out.graph.edge_list();
    let removed: Vec<(u64, u64)> = survivors
        .iter()
        .copied()
        .filter(|&(u, v)| u == a || v == a)
        .take(2)
        .collect();
    survivors.retain(|e| !removed.contains(e));
    let damaged = graph::Graph::from_edges(out.graph.ids().iter().copied(), survivors).unwrap();
    let conn = graph::edge_connectivity(&damaged, a, b);
    println!(
        "\nafter deleting {} links at core replica {a}: Conn({a}, {b}) = {conn} (needed ≥ {})",
        removed.len(),
        6 - removed.len()
    );
    assert!(conn >= 6 - removed.len());
    println!("the core survives the failures ✓");
}
